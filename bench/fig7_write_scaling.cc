// Figure 7: "Aurora scales linearly for write-only workload" — SysBench
// write-only on 1GB across the r3 family. Paper: Aurora reaches 121K
// writes/sec on r3.8xlarge vs ~20-25K for MySQL 5.6/5.7.

#include <chrono>
#include <cstdio>

#include <string>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

// Metric keys use '.' as a path separator, so "r3.8xlarge" becomes
// "r3_8xlarge" in the report.
std::string MetricName(const std::string& instance) {
  std::string out = instance;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

void Run(int sim_shards) {
  PrintHeader("Figure 7: write-only statements/sec vs instance size",
              "Figure 7 (SysBench write-only, 1GB, §6.1.1)");
  printf("sim_shards=%d (PDES worker threads; results are shard-count\n"
         "invariant, only wall-clock changes)\n\n", sim_shards);

  const sim::InstanceOptions sizes[] = {sim::R3Large(), sim::R3XLarge(),
                                        sim::R32XLarge(), sim::R34XLarge(),
                                        sim::R38XLarge()};
  // "1 GB" of the paper has ~10M rows; keep the rows-per-connection ratio
  // sane at the simulated scale by using 10 scale-GB of rows (still fully
  // cache-resident, as in the paper's 1GB configuration).
  const uint64_t rows = RowsForGb(10);

  // Shard sweeps write distinct JSONs so CI can archive the wall-clock
  // comparison side by side.
  std::string report_name = "fig7_write_scaling";
  if (sim_shards > 1) {
    report_name += "_shards" + std::to_string(sim_shards);
  }
  BenchReport report(report_name);
  report.Result("sim_shards", sim_shards);
  AuroraRun last_aurora;  // largest instance, kept alive for the dump
  MysqlRun last_mysql;

  const auto wall_start = std::chrono::steady_clock::now();
  uint64_t stall_us = 0, horizon_syncs = 0, mailbox_msgs = 0;

  printf("%-12s %6s %17s %17s\n", "instance", "vcpus", "aurora writes/s",
         "mysql writes/s");
  for (const auto& inst : sizes) {
    SysbenchOptions sopts;
    sopts.mode = SysbenchOptions::Mode::kWriteOnly;
    sopts.connections = inst.vcpus * 4;
    sopts.duration = Millis(1500);
    sopts.warmup = Millis(300);

    ClusterOptions aopts = StandardAuroraOptions();
    aopts.writer_instance = inst;
    aopts.sim_shards = sim_shards;
    // Interval windows on the largest instance only (keeps the JSON small).
    const SimDuration window =
        inst.vcpus == sim::R38XLarge().vcpus ? Millis(300) : 0;
    AuroraRun aurora = RunAuroraSysbench(aopts, sopts, rows, window);

    MysqlClusterOptions mopts = StandardMysqlOptions();
    mopts.instance = inst;
    mopts.sim_shards = sim_shards;
    mopts.mysql.cpu_contention_per_connection_us = 0.3;
    MysqlRun mysql = RunMysqlSysbench(mopts, sopts, rows);

    printf("%-12s %6d %17.0f %17.0f\n", inst.name.c_str(), inst.vcpus,
           aurora.results.writes_per_sec(), mysql.results.writes_per_sec());

    const std::string key = MetricName(inst.name);
    report.Result("aurora." + key + ".writes_per_sec",
                  aurora.results.writes_per_sec());
    report.Result("mysql." + key + ".writes_per_sec",
                  mysql.results.writes_per_sec());
    if (aurora.cluster != nullptr) {
      stall_us += aurora.cluster->loop()->stall_wall_us();
      horizon_syncs += aurora.cluster->loop()->horizon_syncs();
      mailbox_msgs += aurora.cluster->loop()->mailbox_msgs();
    }
    if (mysql.cluster != nullptr) {
      stall_us += mysql.cluster->loop()->stall_wall_us();
    }
    if (!aurora.windows.empty()) {
      report.AttachWindows("aurora." + key + ".windows", aurora.windows);
    }
    last_aurora = std::move(aurora);
    last_mysql = std::move(mysql);
  }
  const double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  printf("\nsweep wall-clock: %.2f s at sim_shards=%d\n", wall_sec,
         sim_shards);
  // Wall-clock and PDES coordination costs are machine-dependent — they go
  // in the bench JSON (this file), never in the deterministic registry.
  report.Result("wall_clock_sec", wall_sec);
  report.Result("pdes.stall_wall_us", static_cast<double>(stall_us));
  report.Result("pdes.horizon_syncs", static_cast<double>(horizon_syncs));
  report.Result("pdes.mailbox_msgs", static_cast<double>(mailbox_msgs));
  // Full cluster dumps for the largest instance: the Aurora side carries
  // the write fan-out accounting (engine.writer.batch_encode_bytes_saved,
  // network totals), the MySQL side the chain-write counters
  // (engine.mysql.{wal_flushes,dwb_writes,binlog_writes}) — symmetric, so
  // the scaling gap can be decomposed from the JSON alone.
  report.AttachCluster("aurora", last_aurora.cluster.get());
  report.AttachRegistry("mysql", last_mysql.cluster->metrics());
  report.Write();

  printf("\nExpected shape: Aurora scales with vCPUs (commits are\n");
  printf("asynchronous); MySQL flattens early on its synchronous WAL and\n");
  printf("binlog chains (paper: 121K vs 20-25K writes/sec at 8xl).\n");
}

}  // namespace
}  // namespace aurora::bench

int main(int argc, char** argv) {
  aurora::bench::Run(aurora::bench::ParseSimShards(argc, argv));
  return 0;
}
