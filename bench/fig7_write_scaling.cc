// Figure 7: "Aurora scales linearly for write-only workload" — SysBench
// write-only on 1GB across the r3 family. Paper: Aurora reaches 121K
// writes/sec on r3.8xlarge vs ~20-25K for MySQL 5.6/5.7.

#include <cstdio>

#include <string>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

// Metric keys use '.' as a path separator, so "r3.8xlarge" becomes
// "r3_8xlarge" in the report.
std::string MetricName(const std::string& instance) {
  std::string out = instance;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

void Run() {
  PrintHeader("Figure 7: write-only statements/sec vs instance size",
              "Figure 7 (SysBench write-only, 1GB, §6.1.1)");

  const sim::InstanceOptions sizes[] = {sim::R3Large(), sim::R3XLarge(),
                                        sim::R32XLarge(), sim::R34XLarge(),
                                        sim::R38XLarge()};
  // "1 GB" of the paper has ~10M rows; keep the rows-per-connection ratio
  // sane at the simulated scale by using 10 scale-GB of rows (still fully
  // cache-resident, as in the paper's 1GB configuration).
  const uint64_t rows = RowsForGb(10);

  BenchReport report("fig7_write_scaling");
  AuroraRun last_aurora;  // largest instance, kept alive for the dump
  MysqlRun last_mysql;

  printf("%-12s %6s %17s %17s\n", "instance", "vcpus", "aurora writes/s",
         "mysql writes/s");
  for (const auto& inst : sizes) {
    SysbenchOptions sopts;
    sopts.mode = SysbenchOptions::Mode::kWriteOnly;
    sopts.connections = inst.vcpus * 4;
    sopts.duration = Millis(1500);
    sopts.warmup = Millis(300);

    ClusterOptions aopts = StandardAuroraOptions();
    aopts.writer_instance = inst;
    AuroraRun aurora = RunAuroraSysbench(aopts, sopts, rows);

    MysqlClusterOptions mopts = StandardMysqlOptions();
    mopts.instance = inst;
    mopts.mysql.cpu_contention_per_connection_us = 0.3;
    MysqlRun mysql = RunMysqlSysbench(mopts, sopts, rows);

    printf("%-12s %6d %17.0f %17.0f\n", inst.name.c_str(), inst.vcpus,
           aurora.results.writes_per_sec(), mysql.results.writes_per_sec());

    const std::string key = MetricName(inst.name);
    report.Result("aurora." + key + ".writes_per_sec",
                  aurora.results.writes_per_sec());
    report.Result("mysql." + key + ".writes_per_sec",
                  mysql.results.writes_per_sec());
    last_aurora = std::move(aurora);
    last_mysql = std::move(mysql);
  }
  // Full cluster dumps for the largest instance: the Aurora side carries
  // the write fan-out accounting (engine.writer.batch_encode_bytes_saved,
  // network totals), the MySQL side the chain-write counters
  // (engine.mysql.{wal_flushes,dwb_writes,binlog_writes}) — symmetric, so
  // the scaling gap can be decomposed from the JSON alone.
  report.AttachCluster("aurora", last_aurora.cluster.get());
  report.AttachRegistry("mysql", last_mysql.cluster->metrics());
  report.Write();

  printf("\nExpected shape: Aurora scales with vCPUs (commits are\n");
  printf("asynchronous); MySQL flattens early on its synchronous WAL and\n");
  printf("binlog chains (paper: 121K vs 20-25K writes/sec at 8xl).\n");
}

}  // namespace
}  // namespace aurora::bench

int main() {
  aurora::bench::Run();
  return 0;
}
