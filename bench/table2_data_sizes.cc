// Table 2: "SysBench Write-Only (writes/sec)" vs database size:
//
//     DB Size   Amazon Aurora    MySQL
//     1 GB          107,000       8,400
//     10 GB         107,000       2,400
//     100 GB        101,000       1,500
//     1 TB           41,000       1,200
//
// The mechanism: Aurora stays flat until the working set leaves the cache
// (page fetches from storage slow the read-modify-write path at 1TB);
// MySQL degrades much earlier because dirty-page write-back and cache
// misses ride the same synchronous EBS chains as commits.

#include <cstdio>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

void Run(int sim_shards) {
  PrintHeader("Table 2: SysBench write-only writes/sec vs DB size",
              "Table 2 (§6.1.2)");

  struct Point {
    const char* label;
    const char* key;
    double gb;
  };
  const Point sizes[] = {{"1 GB", "gb1", 1},
                         {"10 GB", "gb10", 10},
                         {"100 GB", "gb100", 100},
                         {"1 TB", "tb1", 1024}};

  BenchReport report("table2_data_sizes");
  printf("%-8s %16s %14s %8s\n", "DB Size", "Aurora writes/s",
         "MySQL writes/s", "ratio");
  for (const Point& p : sizes) {
    SysbenchOptions sopts;
    sopts.mode = SysbenchOptions::Mode::kWriteOnly;
    sopts.connections = 50;
    sopts.duration = Seconds(3);
    sopts.warmup = Millis(500);
    const uint64_t rows = RowsForGb(p.gb);

    ClusterOptions aopts = StandardAuroraOptions();
    aopts.sim_shards = sim_shards;
    MysqlClusterOptions mopts = StandardMysqlOptions();
    mopts.sim_shards = sim_shards;
    AuroraRun aurora = RunAuroraSysbench(aopts, sopts, rows);
    MysqlRun mysql = RunMysqlSysbench(mopts, sopts, rows);

    double a = aurora.results.writes_per_sec();
    double m = mysql.results.writes_per_sec();
    printf("%-8s %16.0f %14.0f %7.1fx\n", p.label, a, m, m > 0 ? a / m : 0);
    std::string prefix(p.key);
    report.Result(prefix + ".aurora_writes_per_sec", a);
    report.Result(prefix + ".mysql_writes_per_sec", m);
    report.Result(prefix + ".ratio", m > 0 ? a / m : 0);
    if (aurora.cluster != nullptr) {
      report.AttachSnapshot(prefix + ".aurora",
                            aurora.cluster->metrics()->Snapshot());
    }
    if (mysql.cluster != nullptr) {
      report.AttachSnapshot(prefix + ".mysql",
                            mysql.cluster->metrics()->Snapshot());
    }
  }
  printf("\nExpected shape: Aurora flat in-cache then dropping at 1TB\n");
  printf("(paper: 107K -> 41K); MySQL degrading throughout (8.4K -> 1.2K);\n");
  printf("Aurora ahead by 10-67x everywhere.\n");
  report.Write();
}

}  // namespace
}  // namespace aurora::bench

int main(int argc, char** argv) {
  aurora::bench::Run(aurora::bench::ParseSimShards(argc, argv));
  return 0;
}
