// Table 3: "SysBench OLTP (writes/sec)" vs connection count:
//
//     Connections   Amazon Aurora   MySQL
//     50                  40,000    10,000
//     500                 71,000    21,000
//     5,000              110,000    13,000
//
// Aurora keeps scaling because commits are asynchronous (worker threads
// never block on log hardening) and the storage fleet absorbs the I/O;
// MySQL peaks near 500 connections and then collapses under mutex and
// scheduler contention plus its serialized group commit. The sweep here
// extends past the paper's table (20,000 and 30,000 connections) to show
// Aurora's asymptote; MySQL is only run through 5,000 — its per-connection
// contention model makes larger counts both glacial and uninformative
// (the collapse is already total).

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

void Run(int sim_shards) {
  PrintHeader("Table 3: SysBench OLTP writes/sec vs connections",
              "Table 3 (§6.1.3), extended past 20,000 connections");

  const int conns[] = {50, 500, 5000, 20000, 30000};
  const int kMysqlMaxConns = 5000;

  BenchReport report("table3_connections");
  report.Result("sim_shards", sim_shards);

  printf("%-12s %16s %14s\n", "Connections", "Aurora writes/s",
         "MySQL writes/s");
  for (int c : conns) {
    // The paper's 10GB table has ~25M rows; at the simulated scale we keep
    // rows-per-connection high enough that lock-collision probability
    // matches the paper's regime rather than an artifact of tiny tables
    // (40 rows/connection keeps expected write-lock collisions per instant
    // in the single digits at 5,000 connections), while bounding the
    // touched-page footprint.
    const uint64_t rows =
        std::max<uint64_t>(RowsForGb(10), static_cast<uint64_t>(c) * 40);
    SysbenchOptions sopts;
    sopts.mode = SysbenchOptions::Mode::kOltp;
    sopts.connections = c;
    // The extended points run a shorter measured window: with 20-30K
    // closed-loop connections the per-second event volume is ~6x the
    // paper's largest row and one second is statistically plenty.
    sopts.duration = c > kMysqlMaxConns ? Seconds(1) : Seconds(2);
    sopts.warmup = Millis(500);

    ClusterOptions aopts = StandardAuroraOptions();
    aopts.sim_shards = sim_shards;
    // Interval windows on the largest point: the JSON carries a time series
    // of the whole registry across the measured second.
    const SimDuration window = c == conns[4] ? Millis(250) : 0;
    AuroraRun aurora = RunAuroraSysbench(aopts, sopts, rows, window);

    std::string prefix = "c" + std::to_string(c);
    report.Result(prefix + ".aurora_writes_per_sec",
                  aurora.results.writes_per_sec());
    report.Result(prefix + ".aurora_tps", aurora.results.tps());
    report.Result(prefix + ".aurora_txn_p95_ms",
                  ToMillis(aurora.results.txn_latency_us.P95()));
    if (!aurora.windows.empty()) {
      report.AttachWindows(prefix + ".aurora_windows", aurora.windows);
    }
    if (c == conns[4] && aurora.cluster != nullptr) {
      report.AttachSnapshot("aurora", aurora.cluster->metrics()->Snapshot());
    }

    if (c <= kMysqlMaxConns) {
      MysqlClusterOptions mopts = StandardMysqlOptions();
      mopts.sim_shards = sim_shards;
      // Per-statement penalty growing with open connections: the documented
      // model of MySQL's contention collapse (DESIGN.md).
      mopts.mysql.cpu_contention_per_connection_us = 0.05;
      MysqlRun mysql = RunMysqlSysbench(mopts, sopts, rows);
      report.Result(prefix + ".mysql_writes_per_sec",
                    mysql.results.writes_per_sec());
      printf("%-12d %16.0f %14.0f\n", c, aurora.results.writes_per_sec(),
             mysql.results.writes_per_sec());
    } else {
      printf("%-12d %16.0f %14s\n", c, aurora.results.writes_per_sec(),
             "(skipped)");
    }
  }
  printf("\nExpected shape: Aurora rising through 5,000 connections and\n");
  printf("holding its plateau at 20,000-30,000 (asynchronous commits keep\n");
  printf("worker threads off the scheduler); MySQL peaking around 500 then\n");
  printf("dropping (paper: 21K -> 13K).\n");
  report.Write();
}

}  // namespace
}  // namespace aurora::bench

int main(int argc, char** argv) {
  aurora::bench::Run(aurora::bench::ParseSimShards(argc, argv));
  return 0;
}
