// Table 3: "SysBench OLTP (writes/sec)" vs connection count:
//
//     Connections   Amazon Aurora   MySQL
//     50                  40,000    10,000
//     500                 71,000    21,000
//     5,000              110,000    13,000
//
// Aurora keeps scaling because commits are asynchronous (worker threads
// never block on log hardening) and the storage fleet absorbs the I/O;
// MySQL peaks near 500 connections and then collapses under mutex and
// scheduler contention plus its serialized group commit.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

void Run() {
  PrintHeader("Table 3: SysBench OLTP writes/sec vs connections",
              "Table 3 (§6.1.3)");

  const int conns[] = {50, 500, 5000};

  printf("%-12s %16s %14s\n", "Connections", "Aurora writes/s",
         "MySQL writes/s");
  for (int c : conns) {
    // The paper's 10GB table has ~25M rows; at the simulated scale we keep
    // rows-per-connection high enough that lock-collision probability
    // matches the paper's regime rather than an artifact of tiny tables
    // (40 rows/connection keeps expected write-lock collisions per instant
    // in the single digits at 5,000 connections), while bounding the
    // touched-page footprint.
    const uint64_t rows =
        std::max<uint64_t>(RowsForGb(10), static_cast<uint64_t>(c) * 40);
    SysbenchOptions sopts;
    sopts.mode = SysbenchOptions::Mode::kOltp;
    sopts.connections = c;
    sopts.duration = Seconds(2);
    sopts.warmup = Millis(500);

    AuroraRun aurora =
        RunAuroraSysbench(StandardAuroraOptions(), sopts, rows);
    MysqlClusterOptions mopts = StandardMysqlOptions();
    // Per-statement penalty growing with open connections: the documented
    // model of MySQL's contention collapse (DESIGN.md).
    mopts.mysql.cpu_contention_per_connection_us = 0.05;
    MysqlRun mysql = RunMysqlSysbench(mopts, sopts, rows);

    printf("%-12d %16.0f %14.0f\n", c, aurora.results.writes_per_sec(),
           mysql.results.writes_per_sec());
  }
  printf("\nExpected shape: Aurora rising through 5,000 connections;\n");
  printf("MySQL peaking around 500 then dropping (paper: 21K -> 13K).\n");
}

}  // namespace
}  // namespace aurora::bench

int main() {
  aurora::bench::Run();
  return 0;
}
