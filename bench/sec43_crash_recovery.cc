// §4.3 / §3.2 crash recovery: "an Aurora database can recover very quickly
// (generally under 10 seconds) even if it crashed while processing over
// 100,000 write statements per second", because durable redo application
// happens continuously in storage — while a traditional engine must replay
// the log from its last checkpoint, offline, in the foreground.

#include <cstdio>

#include "bench/bench_util.h"
#include "tests/test_util.h"

namespace aurora::bench {
namespace {

void Run() {
  PrintHeader("Section 4.3: crash recovery time vs write history",
              "§4.3 (recovery without checkpoint replay)");
  BenchReport bench("sec43_crash_recovery");

  printf("%-18s %18s %22s\n", "writes pre-crash", "aurora recovery",
         "mysql recovery (ARIES)");
  for (int writes : {200, 1000, 5000}) {
    // Aurora.
    ClusterOptions aopts = StandardAuroraOptions();
    AuroraCluster aurora(aopts);
    if (!aurora.BootstrapSync().ok()) continue;
    if (!aurora.CreateTableSync("t").ok()) continue;
    PageId at = *aurora.TableAnchorSync("t");
    for (int i = 0; i < writes; ++i) {
      (void)aurora.PutSync(at, SyntheticTableLayout::KeyOf(i % 256),
                           std::string(100, 'x'));
    }
    aurora.CrashWriter();
    SimTime a0 = aurora.loop()->now();
    bool a_ok = aurora.RecoverSync().ok();
    SimDuration a_time = aurora.loop()->now() - a0;

    // MySQL with a long checkpoint interval (worst case the paper
    // describes: "reducing the checkpoint interval helps, but at the
    // expense of interference with foreground transactions").
    MysqlClusterOptions mopts = StandardMysqlOptions();
    mopts.mysql.checkpoint_interval = Minutes(60);
    MysqlCluster mysql(mopts);
    if (!mysql.BootstrapSync().ok()) continue;
    if (!mysql.CreateTableSync("t").ok()) continue;
    PageId mt = *mysql.TableAnchorSync("t");
    for (int i = 0; i < writes; ++i) {
      (void)mysql.PutSync(mt, SyntheticTableLayout::KeyOf(i % 256),
                          std::string(100, 'x'));
    }
    mysql.db()->Crash();
    SimTime m0 = mysql.loop()->now();
    bool m_ok = mysql.RecoverSync().ok();
    SimDuration m_time = mysql.loop()->now() - m0;

    printf("%-18d %15.1f ms%s %19.1f ms%s\n", writes, ToMillis(a_time),
           a_ok ? "" : "!", ToMillis(m_time), m_ok ? "" : "!");
    const std::string prefix = "writes_" + std::to_string(writes);
    bench.Result(prefix + ".aurora_recovery_ms", ToMillis(a_time));
    bench.Result(prefix + ".mysql_recovery_ms", ToMillis(m_time));
    bench.Result(prefix + ".aurora_recovered", a_ok ? 1.0 : 0.0);
    bench.Result(prefix + ".mysql_recovered", m_ok ? 1.0 : 0.0);
  }
  printf("\nExpected shape: Aurora recovery time is flat (a quorum\n");
  printf("round-trip per PG plus truncation — no redo replay); MySQL's\n");
  printf("grows linearly with the log written since its checkpoint.\n");
  bench.Write();
}

}  // namespace
}  // namespace aurora::bench

int main() {
  aurora::bench::Run();
  return 0;
}
