// Table 4: "Replica Lag for SysBench Write-Only (msec)":
//
//     Writes/sec   Amazon Aurora   MySQL
//     1,000             2.62        < 1,000
//     2,000             3.42          1,000
//     5,000             3.94         60,000
//     10,000            5.38        300,000
//
// Aurora replicas consume the redo stream (milliseconds behind); a MySQL
// binlog replica re-executes statements on one SQL thread, so lag explodes
// once the write rate passes single-thread capacity.

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/sysbench.h"

namespace aurora::bench {
namespace {

// Paces writers to approximately `target_wps` by sizing the closed loop.
int ConnectionsFor(double target_wps) {
  // Each connection sustains roughly 1.3k write statements/sec in this
  // configuration; clamp to at least 1.
  int c = static_cast<int>(target_wps / 1300.0 + 0.5);
  return c < 1 ? 1 : c;
}

void Run() {
  PrintHeader("Table 4: replica lag (ms) vs write rate",
              "Table 4 (§6.1.4)");

  const double rates[] = {1000, 2000, 5000, 10000};
  const uint64_t rows = RowsForGb(1);

  BenchReport report("table4_replica_lag");
  AuroraRun last_aurora;  // highest rate, kept alive for the dump
  MysqlRun last_mysql;

  printf("%-12s %16s %18s %18s %16s\n", "writes/sec", "aurora wps",
         "aurora lag ms", "mysql wps", "mysql lag ms");
  for (double rate : rates) {
    SysbenchOptions sopts;
    sopts.mode = SysbenchOptions::Mode::kWriteOnly;
    sopts.connections = ConnectionsFor(rate);
    sopts.duration = Seconds(3);
    sopts.warmup = Millis(500);

    ClusterOptions aopts = StandardAuroraOptions();
    aopts.num_replicas = 1;
    AuroraRun aurora = RunAuroraSysbench(aopts, sopts, rows);
    const Histogram& alag = aurora.cluster->replica(0)->stats().lag_us;

    MysqlClusterOptions mopts = StandardMysqlOptions();
    mopts.num_binlog_replicas = 1;
    MysqlRun mysql = RunMysqlSysbench(mopts, sopts, rows);
    const Histogram& mlag =
        mysql.cluster->binlog_replica(0)->stats().lag_us;
    // Include queued-but-unapplied backlog (the run ends before the
    // replica catches up; the paper measures during steady overload).
    double mysql_lag_ms =
        ToMillis(mysql.cluster->binlog_replica(0)->CurrentBacklog()) +
        ToMillis(mlag.P95());

    printf("%-12.0f %16.0f %18.2f %18.0f %16.0f\n", rate,
           aurora.results.writes_per_sec(), ToMillis(alag.P95()),
           mysql.results.writes_per_sec(), mysql_lag_ms);

    const std::string key = "rate_" + std::to_string(static_cast<int>(rate));
    report.Result(key + ".aurora.writes_per_sec",
                  aurora.results.writes_per_sec());
    report.Result(key + ".aurora.lag_p95_ms", ToMillis(alag.P95()));
    report.Result(key + ".mysql.writes_per_sec",
                  mysql.results.writes_per_sec());
    report.Result(key + ".mysql.lag_ms", mysql_lag_ms);
    last_aurora = std::move(aurora);
    last_mysql = std::move(mysql);
  }
  // Dumps at the highest rate — where the MySQL applier is saturated and
  // the backlog dominates — from both systems symmetrically.
  report.AttachCluster("aurora", last_aurora.cluster.get());
  report.AttachRegistry("mysql", last_mysql.cluster->metrics());
  report.Write();

  printf("\nExpected shape: Aurora lag stays in single-digit ms at every\n");
  printf("rate; MySQL lag grows unboundedly once the single-threaded\n");
  printf("applier saturates (paper: 300 seconds at 10K writes/sec).\n");
}

}  // namespace
}  // namespace aurora::bench

int main() {
  aurora::bench::Run();
  return 0;
}
