// Figure 11: "Maximum Replica Lag (averaged hourly)" — after the education-
// technology company's migration, the max lag across 4 Aurora replicas
// never exceeded 20 ms (vs 12-minute spikes on MySQL that made the replica
// unusable except as a standby).

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

void Run() {
  PrintHeader("Figure 11: max replica lag across 4 replicas",
              "Figure 11 (§6.2.3)");

  SysbenchOptions sopts;
  sopts.mode = SysbenchOptions::Mode::kOltp;
  sopts.connections = 32;
  sopts.duration = Seconds(4);
  sopts.warmup = Millis(500);
  const uint64_t rows = RowsForGb(10);

  ClusterOptions aopts = StandardAuroraOptions();
  aopts.num_replicas = 4;
  AuroraRun aurora = RunAuroraSysbench(aopts, sopts, rows);

  BenchReport report("fig11_replica_lag");
  printf("%-10s %14s %14s %14s\n", "replica", "p50 lag ms", "p95 lag ms",
         "max lag ms");
  double overall_max = 0;
  for (size_t r = 0; r < aurora.cluster->num_replicas(); ++r) {
    const Histogram& lag = aurora.cluster->replica(r)->stats().lag_us;
    overall_max = std::max(overall_max, ToMillis(lag.max()));
    printf("replica-%zu %14.2f %14.2f %14.2f\n", r, ToMillis(lag.P50()),
           ToMillis(lag.P95()), ToMillis(lag.max()));
    const std::string key = "aurora.replica" + std::to_string(r);
    report.Result(key + ".lag_p50_ms", ToMillis(lag.P50()));
    report.Result(key + ".lag_p95_ms", ToMillis(lag.P95()));
    report.Result(key + ".lag_max_ms", ToMillis(lag.max()));
    report.ResultHistogram(key + ".lag_us", &lag);
  }
  printf("\nMax lag across all 4 replicas: %.2f ms  (paper: never exceeded"
         " 20 ms;\nMySQL before migration spiked to 12 minutes)\n",
         overall_max);
  report.Result("aurora.max_lag_ms", overall_max);

  // MySQL comparison point at the same load.
  MysqlClusterOptions mopts = StandardMysqlOptions();
  mopts.num_binlog_replicas = 1;
  MysqlRun mysql = RunMysqlSysbench(mopts, sopts, rows);
  double mysql_lag_ms =
      ToMillis(mysql.cluster->binlog_replica(0)->CurrentBacklog()) +
      ToMillis(mysql.cluster->binlog_replica(0)->stats().lag_us.P95());
  printf("MySQL binlog replica lag at the same load: %.0f ms\n",
         mysql_lag_ms);
  report.Result("mysql.replica_lag_ms", mysql_lag_ms);
  // Full registries: replica apply/read-point traces on the Aurora side,
  // binlog ship/apply counters on the MySQL side.
  report.AttachCluster("aurora", aurora.cluster.get());
  report.AttachRegistry("mysql", mysql.cluster->metrics());
  report.Write();
}

}  // namespace
}  // namespace aurora::bench

int main() {
  aurora::bench::Run();
  return 0;
}
