// Degraded-mode ablation: SysBench write-only throughput and latency while
// the fabric adversary injects loss, duplication, bounded reordering and
// bit-flip corruption at swept rates. The paper's quorum design tenet
// ("deal gracefully with ... the continuous low level background noise of
// node, disk and network path failures", §2.1) predicts graceful
// degradation: 4/6 write quorums absorb per-link loss, storage dedups
// duplicated batches, and the frame checksum turns corruption into loss —
// so throughput should bend, not break, as rates climb.

#include <cstdio>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/chaos.h"

namespace aurora::bench {
namespace {

struct DegradedPoint {
  const char* name;
  AdversaryConfig cfg;
};

std::vector<DegradedPoint> SweepPoints() {
  std::vector<DegradedPoint> pts;
  pts.push_back({"clean", {}});
  for (double drop : {0.01, 0.02, 0.05}) {
    AdversaryConfig c;
    c.drop_probability = drop;
    pts.push_back({nullptr, c});
    pts.back().name = drop == 0.01   ? "drop_1pct"
                      : drop == 0.02 ? "drop_2pct"
                                     : "drop_5pct";
  }
  for (double dup : {0.05, 0.20}) {
    AdversaryConfig c;
    c.duplicate_probability = dup;
    pts.push_back({dup == 0.05 ? "dup_5pct" : "dup_20pct", c});
  }
  {
    AdversaryConfig c;
    c.reorder_window = Millis(2);
    pts.push_back({"reorder_2ms", c});
  }
  {
    // The chaos-suite acceptance profile: everything at once.
    AdversaryConfig c;
    c.drop_probability = 0.02;
    c.duplicate_probability = 0.05;
    c.reorder_window = Millis(2);
    c.corrupt_probability = 0.001;
    pts.push_back({"combined", c});
  }
  return pts;
}

void Run() {
  PrintHeader("Degraded mode: write throughput under fabric adversary",
              "§2.1 design tenet (graceful degradation under noise)");

  const uint64_t rows = RowsForGb(2);
  BenchReport report("degraded_mode");
  AuroraRun combined_run;  // kept alive for the full metrics dump

  printf("%-12s %14s %12s %14s %14s\n", "point", "writes/s", "errors",
         "dup_batches", "corrupt_drop");
  for (const DegradedPoint& pt : SweepPoints()) {
    SysbenchOptions sopts;
    sopts.mode = SysbenchOptions::Mode::kWriteOnly;
    sopts.connections = 32;
    sopts.duration = Millis(1500);
    sopts.warmup = Millis(300);

    // Build the cluster by hand (instead of RunAuroraSysbench) so the
    // adversary is armed before the first workload statement.
    AuroraRun run;
    run.cluster = std::make_unique<AuroraCluster>(StandardAuroraOptions());
    run.catalog = std::make_unique<SyntheticCatalog>();
    if (!run.cluster->BootstrapSync().ok()) return;
    auto layout = AttachSyntheticTable(run.cluster.get(), run.catalog.get(),
                                       "sbtest", rows, kRowBytes);
    if (!layout.ok()) return;
    run.table = (*layout)->anchor();
    sopts.table_rows = rows;
    sopts.value_size = kRowBytes;

    ChaosEngine chaos(run.cluster.get());
    chaos.SetAdversary(pt.cfg);

    AuroraClient client(run.cluster->writer());
    SysbenchDriver driver(run.cluster->writer_loop(), &client, run.table, sopts);
    bool done = false;
    driver.Run([&] { done = true; });
    run.cluster->RunUntil([&] { return done; }, Minutes(60));
    run.results = driver.results();
    run.ok = done;

    uint64_t dup_batches = 0;
    uint64_t corrupt_dropped =
        run.cluster->network()->adversary().corrupted_dropped;
    for (size_t i = 0; i < run.cluster->num_storage_nodes(); ++i) {
      dup_batches += run.cluster->storage_node(i)->stats().duplicate_batches;
    }
    printf("%-12s %14.0f %12llu %14llu %14llu\n", pt.name,
           run.results.writes_per_sec(),
           static_cast<unsigned long long>(run.results.errors),
           static_cast<unsigned long long>(dup_batches),
           static_cast<unsigned long long>(corrupt_dropped));

    const std::string key(pt.name);
    report.Result(key + ".writes_per_sec", run.results.writes_per_sec());
    report.Result(key + ".tps", run.results.tps());
    report.Result(key + ".errors", static_cast<double>(run.results.errors));
    report.Result(key + ".duplicate_batches",
                  static_cast<double>(dup_batches));
    report.Result(key + ".corrupted_dropped",
                  static_cast<double>(corrupt_dropped));
    if (std::string(pt.name) == "combined") {
      combined_run = std::move(run);
    }
  }
  // Full cluster dump for the combined point: net.adversary.*,
  // storage.{stale_epoch_rejects,duplicate_batches,corrupt_frames_dropped}
  // and the engine retry counters decompose where the degradation went.
  if (combined_run.cluster != nullptr) {
    report.ResultHistogram("combined.txn_latency_us",
                           &combined_run.results.txn_latency_us);
    report.AttachCluster("combined", combined_run.cluster.get());
  }
  report.Write();

  printf("\nExpected shape: graceful degradation — modest slope from\n");
  printf("clean through drop_5pct (retries absorb loss), near-zero cost\n");
  printf("for duplication (storage dedups without re-applying), and the\n");
  printf("combined adversary still completing every transaction.\n");
}

}  // namespace
}  // namespace aurora::bench

int main() {
  aurora::bench::Run();
  return 0;
}
