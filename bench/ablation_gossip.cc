// Ablation: peer gossip (Figure 4 step 4). With message loss, the writer's
// retries establish quorum but individual replicas stay holey; gossip is
// what converges every segment to completeness (which read routing and
// repair depend on). Compare SCL convergence with gossip on vs off.

#include <cstdio>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

void RunOne(const char* label, const char* key, bool gossip_on,
            int sim_shards, BenchReport* report) {
  ClusterOptions copts = StandardAuroraOptions();
  copts.sim_shards = sim_shards;
  if (!gossip_on) {
    copts.storage.gossip_interval = Minutes(60);  // effectively disabled
  }
  AuroraCluster cluster(copts);
  if (!cluster.BootstrapSync().ok()) return;
  if (!cluster.CreateTableSync("t").ok()) return;
  PageId table = *cluster.TableAnchorSync("t");
  cluster.network()->set_drop_probability(0.02);
  for (int i = 0; i < 400; ++i) {
    (void)cluster.PutSync(table, SyntheticTableLayout::KeyOf(i), "v");
  }
  cluster.network()->set_drop_probability(0.0);
  cluster.RunFor(Seconds(5));

  Lsn vdl = cluster.writer()->vdl();
  size_t complete = 0, total = 0;
  uint64_t filled = 0;
  size_t num_pgs = cluster.control_plane()->num_pgs();
  for (PgId pg = 0; pg < num_pgs; ++pg) {
    for (sim::NodeId node : cluster.control_plane()->membership(pg).nodes) {
      StorageNode* sn = cluster.storage_node_by_id(node);
      if (sn == nullptr || sn->segment(pg) == nullptr) continue;
      ++total;
      if (sn->segment(pg)->scl() >= vdl) ++complete;
    }
  }
  for (size_t i = 0; i < cluster.num_storage_nodes(); ++i) {
    filled += cluster.storage_node(i)->stats().gossip_records_filled;
  }
  printf("%-14s %12zu/%zu %22llu\n", label, complete, total,
         static_cast<unsigned long long>(filled));
  std::string prefix(key);
  report->Result(prefix + ".complete_segments",
                 static_cast<double>(complete));
  report->Result(prefix + ".total_segments", static_cast<double>(total));
  report->Result(prefix + ".records_backfilled",
                 static_cast<double>(filled));
  report->AttachSnapshot(prefix + ".cluster", cluster.metrics()->Snapshot());
}

void Run(int sim_shards) {
  PrintHeader("Ablation: gossip-driven gap filling under 2% message loss",
              "Figure 4 step 4 (§4.1)");
  printf("%-14s %14s %22s\n", "gossip", "complete segs",
         "records backfilled");
  BenchReport report("ablation_gossip");
  RunOne("on", "on", true, sim_shards, &report);
  RunOne("off", "off", false, sim_shards, &report);
  printf("\nExpected shape: with gossip every replica converges to\n");
  printf("SCL >= VDL; without it, replicas that missed batches stay\n");
  printf("permanently holey (quorum still holds, but read routing and\n");
  printf("repair donors shrink).\n");
  report.Write();
}

}  // namespace
}  // namespace aurora::bench

int main(int argc, char** argv) {
  aurora::bench::Run(aurora::bench::ParseSimShards(argc, argv));
  return 0;
}
