// Micro-benchmarks (google-benchmark) for the simulator-kernel hot path:
// event scheduling/dispatch, cancellation, and network message delivery.
// Every experiment in this reproduction is bottlenecked on these three
// primitives (each simulated second executes hundreds of thousands of
// events), so regressions here slow the whole suite down — the perf-smoke
// CI job runs this bench and archives BENCH_micro_sim.json per commit.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "sim/sharded_loop.h"
#include "sim/topology.h"

namespace aurora::sim {
namespace {

/// Schedule-then-drain throughput: the steady-state cost of one event's
/// full lifecycle (allocate id, enqueue, dequeue, dispatch). Batches of
/// `range(0)` events with randomized delays model the mixed-horizon queues
/// (NIC serialization, disk completions, background timers) of a cluster
/// run.
void BM_EventLoopScheduleRun(benchmark::State& state) {
  EventLoop loop;
  Random rng(42);
  const int batch = static_cast<int>(state.range(0));
  uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      loop.Schedule(rng.Uniform(1000), [&sink] { ++sink; });
    }
    loop.Run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(64)->Arg(4096);

/// Timer-heavy usage: schedule far-out events and cancel most of them
/// before they fire — the retry/timeout pattern of the write path (every
/// batch arms a retry timer that quorum arrival cancels) and the crash
/// paths (Crash() cancels all per-component maintenance timers).
void BM_EventLoopCancel(benchmark::State& state) {
  EventLoop loop;
  const int batch = 1024;
  std::vector<EventId> ids(batch);
  uint64_t fired = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      ids[i] = loop.Schedule(1000000, [&fired] { ++fired; });
    }
    // Cancel 15/16 of them (quorums normally arrive before timeouts).
    for (int i = 0; i < batch; ++i) {
      if (i % 16 != 0) loop.Cancel(ids[i]);
    }
    loop.Run();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventLoopCancel);

/// End-to-end message delivery: Send through a 3-AZ fabric, including NIC
/// serialization, jittered propagation, delivery scheduling and handler
/// dispatch. `range(0)` selects plain vs shared-payload fan-out sends of a
/// write-batch-sized payload.
void BM_NetworkSendDeliver(benchmark::State& state) {
  EventLoop loop;
  Topology topo(3);
  Network net(&loop, &topo, FabricOptions{}, Random(7));
  const NodeId src = topo.AddNode(0, "src");
  std::vector<NodeId> dst;
  for (int az = 0; az < 3; ++az) {
    dst.push_back(topo.AddNode(static_cast<AzId>(az), "d" + std::to_string(az)));
    dst.push_back(topo.AddNode(static_cast<AzId>(az), "e" + std::to_string(az)));
  }
  uint64_t received = 0;
  for (NodeId n : dst) {
    net.Register(n, [&received](const Message&) { ++received; });
  }
  const bool shared = state.range(0) != 0;
  const std::string body_bytes(1024, 'b');  // ~ one redo batch
  for (auto _ : state) {
    if (shared) {
      auto body = std::make_shared<const std::string>(body_bytes);
      for (NodeId n : dst) net.Send(src, n, 1, "hdr", body);
    } else {
      for (NodeId n : dst) net.Send(src, n, 1, std::string(body_bytes));
    }
    loop.Run();
  }
  benchmark::DoNotOptimize(received);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(dst.size()));
}
BENCHMARK(BM_NetworkSendDeliver)->Arg(0)->Arg(1);

/// A self-rescheduling event chain pinned to one shard; every 8th fire it
/// mails the next shard (the ~10% cross-shard traffic ratio of an AZ-placed
/// cluster, where most events are node-local timers and disk completions).
struct ShardChain {
  ShardedEventLoop* loop;
  uint32_t shard;
  uint64_t fires = 0;
};

void ChainFire(ShardChain* c) {
  ++c->fires;
  EventLoop* l = c->loop->shard(c->shard);
  if (c->fires % 8 == 0) {
    const uint32_t dst = (c->shard + 1) % c->loop->num_shards();
    c->loop->Mail(c->shard, dst, l->now() + c->loop->lookahead(), [] {});
  }
  l->Schedule(10, [c] { ChainFire(c); });
}

/// Windowed-BSP throughput of the sharded kernel: 4 shards each running 16
/// event chains, executed with `range(0)` worker threads. Items/sec is
/// events dispatched across all shards — the number that must scale with
/// workers for `--sim_shards` to pay off (wall-clock only; the event
/// sequence itself is byte-identical at any worker count).
void BM_ShardedEventLoopWindow(benchmark::State& state) {
  constexpr uint32_t kShards = 4;
  constexpr int kChainsPerShard = 16;
  ShardedEventLoop loop(kShards);
  loop.set_lookahead(50);
  loop.set_workers(static_cast<uint32_t>(state.range(0)));
  std::vector<std::unique_ptr<ShardChain>> chains;
  for (uint32_t s = 0; s < kShards; ++s) {
    for (int i = 0; i < kChainsPerShard; ++i) {
      chains.push_back(std::make_unique<ShardChain>(ShardChain{&loop, s}));
      ChainFire(chains.back().get());
    }
  }
  uint64_t executed = 0;
  for (auto _ : state) {
    const uint64_t before = loop.events_executed();
    loop.RunFor(10000);
    executed += loop.events_executed() - before;
  }
  benchmark::DoNotOptimize(executed);
  state.SetItemsProcessed(static_cast<int64_t>(executed));
}
BENCHMARK(BM_ShardedEventLoopWindow)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/// A token that hops shard-to-shard through the mailbox on every delivery:
/// the worst case for the conservative protocol (all traffic cross-shard,
/// every window at the lookahead floor).
struct MailToken {
  ShardedEventLoop* loop;
  uint32_t shard;
};

void TokenHop(MailToken* t) {
  const uint32_t src = t->shard;
  t->shard = (src + 1) % t->loop->num_shards();
  const SimTime at = t->loop->shard(src)->now() + t->loop->lookahead();
  t->loop->Mail(src, t->shard, at, [t] { TokenHop(t); });
}

/// Cross-shard Mail throughput under `range(0)` workers: 64 tokens on a
/// 4-shard ring. Items/sec is mailbox messages routed (stage, merge,
/// admit) — the coordination overhead ceiling of the PDES design.
void BM_ShardedEventLoopCrossShardMail(benchmark::State& state) {
  constexpr uint32_t kShards = 4;
  constexpr int kTokens = 64;
  ShardedEventLoop loop(kShards);
  loop.set_lookahead(20);
  loop.set_workers(static_cast<uint32_t>(state.range(0)));
  std::vector<std::unique_ptr<MailToken>> tokens;
  for (int i = 0; i < kTokens; ++i) {
    tokens.push_back(std::make_unique<MailToken>(
        MailToken{&loop, static_cast<uint32_t>(i) % kShards}));
    TokenHop(tokens.back().get());
  }
  uint64_t mailed = 0;
  for (auto _ : state) {
    const uint64_t before = loop.mailbox_msgs();
    loop.RunFor(10000);
    mailed += loop.mailbox_msgs() - before;
  }
  benchmark::DoNotOptimize(mailed);
  state.SetItemsProcessed(static_cast<int64_t>(mailed));
}
BENCHMARK(BM_ShardedEventLoopCrossShardMail)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime();

}  // namespace
}  // namespace aurora::sim

namespace {

/// Console reporter that also captures per-benchmark timings and item
/// rates so they can be emitted as BENCH_micro_sim.json.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double real_time_ns;
    double items_per_second;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      double ips = 0;
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) ips = it->second.value;
      captured.push_back(
          {run.benchmark_name(), run.GetAdjustedRealTime(), ips});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Captured> captured;
};

}  // namespace

int main(int argc, char** argv) {
  // Accept and strip --sim_shards=N so the CI harness can pass it to every
  // bench uniformly; here it only suffixes the report name (the
  // BM_ShardedEventLoop* entries sweep worker counts via their Args).
  const int sim_shards = aurora::bench::ParseSimShards(argc, argv);
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--sim_shards=", 13) != 0) argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  std::string report_name = "micro_sim";
  if (sim_shards > 1) {
    report_name += "_shards" + std::to_string(sim_shards);
  }
  aurora::bench::BenchReport report(report_name);
  double schedule_run_ips = 0;
  for (const auto& c : reporter.captured) {
    report.Result(c.name + ".real_time_ns", c.real_time_ns);
    if (c.items_per_second > 0) {
      report.Result(c.name + ".items_per_second", c.items_per_second);
    }
    if (c.name == "BM_EventLoopScheduleRun/4096") {
      schedule_run_ips = c.items_per_second;
    }
  }
  report.Write();
  // One grep-able line for the CI job log.
  printf("micro_sim summary: events/sec = %.0f (BM_EventLoopScheduleRun/4096)\n",
         schedule_run_ips);
  return 0;
}
