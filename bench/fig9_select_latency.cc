// Figure 9: "SELECT latency (P50 vs P95)" — the education-technology
// customer's SELECT latencies before (MySQL) and after (Aurora) migration.
// Before: P95 of 40-80 ms towering over a ~1 ms P50 (outlier-dominated);
// after: P95 collapses toward the P50.

#include <cstdio>

#include "bench/bench_util.h"

namespace aurora::bench {
namespace {

void Run(int sim_shards) {
  PrintHeader("Figure 9: SELECT latency P50 vs P95 (migration)",
              "Figure 9 (§6.2.2)");

  // Matched, unsaturated load on both systems (a handful of connections)
  // so latency is compared at equal throughput; a working set far larger
  // than the cache makes every SELECT a storage fetch; the 20% writes are
  // what create MySQL's read tail — page flushing and double-writes queue
  // on the same EBS volume the reads need, while Aurora's log-only writes
  // land on a separate fleet. Key choice is Zipf-skewed (production SELECT
  // traffic concentrates on hot rows) with a buffer cache far smaller than
  // the touched set, so hot pages churn through the cache and the storage
  // fleet serves repeat reconstructions at steady state.
  SysbenchOptions sopts;
  sopts.mode = SysbenchOptions::Mode::kOltp;
  sopts.point_selects = 8;
  sopts.index_updates = 2;
  sopts.connections = 8;
  sopts.zipf_theta = 0.9;
  sopts.duration = Seconds(3);
  sopts.warmup = Millis(500);
  const uint64_t rows = RowsForGb(40);

  MysqlClusterOptions mopts = StandardMysqlOptions();
  mopts.mysql.engine.buffer_pool_pages = 400;
  mopts.sim_shards = sim_shards;
  MysqlRun before = RunMysqlSysbench(mopts, sopts, rows);
  const Histogram& bm = before.cluster->db()->stats().read_latency_us;

  ClusterOptions aopts = StandardAuroraOptions();
  aopts.engine.buffer_pool_pages = 400;
  aopts.sim_shards = sim_shards;
  AuroraRun after = RunAuroraSysbench(aopts, sopts, rows);
  const Histogram& am = after.cluster->writer()->stats().read_latency_us;

  printf("%-22s %12s %12s %12s\n", "Configuration", "P50 (ms)", "P95 (ms)",
         "P95/P50");
  printf("%-22s %12.2f %12.2f %11.1fx\n", "MySQL (before)",
         ToMillis(bm.P50()), ToMillis(bm.P95()),
         bm.P50() ? static_cast<double>(bm.P95()) / bm.P50() : 0);
  printf("%-22s %12.2f %12.2f %11.1fx\n", "Aurora (after)",
         ToMillis(am.P50()), ToMillis(am.P95()),
         am.P50() ? static_cast<double>(am.P95()) / am.P50() : 0);
  std::string report_name = "fig9_select_latency";
  if (sim_shards > 1) {
    report_name += "_shards" + std::to_string(sim_shards);
  }
  BenchReport report(report_name);
  report.Result("sim_shards", sim_shards);
  report.Result("mysql.read_p50_ms", ToMillis(bm.P50()));
  report.Result("mysql.read_p95_ms", ToMillis(bm.P95()));
  report.Result("aurora.read_p50_ms", ToMillis(am.P50()));
  report.Result("aurora.read_p95_ms", ToMillis(am.P95()));
  report.ResultHistogram("mysql.read_latency_us", &bm);
  report.ResultHistogram("aurora.read_latency_us", &am);
  // The full cluster dump carries the write-path stage tracing
  // (engine.writer.trace.*) that decomposes where Aurora's latency goes.
  report.AttachCluster("aurora", after.cluster.get());
  report.Write();

  printf("\nNote: this figure reproduces PARTIALLY (see EXPERIMENTS.md).\n");
  printf("The customer's 40-80x read tail came from multi-tenant EBS\n");
  printf("outliers under production load, which the single-tenant EBS\n");
  printf("model here lacks; at matched load both systems show comparable\n");
  printf("read-tail ratios. The write-path tail story (Figure 10)\n");
  printf("reproduces strongly.\n");
}

}  // namespace
}  // namespace aurora::bench

int main(int argc, char** argv) {
  aurora::bench::Run(aurora::bench::ParseSimShards(argc, argv));
  return 0;
}
