// aurora-lint CLI: walks --root's src/, tests/, bench/ and reports
// determinism (D), leak (L), crash-lifecycle (C), and hot-path (H) hazards.
// Exits 1 when any unsuppressed finding remains.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "lint_core.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: aurora_lint --root <repo-root> [--dirs a,b,c] "
               "[--json <path>] [--list-suppressed]\n");
}

}  // namespace

int main(int argc, char** argv) {
  aurora::lint::Options opts;
  std::string json_path;
  bool list_suppressed = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--dirs" && i + 1 < argc) {
      opts.dirs.clear();
      std::stringstream ss(argv[++i]);
      std::string d;
      while (std::getline(ss, d, ',')) {
        if (!d.empty()) opts.dirs.push_back(d);
      }
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--list-suppressed") {
      list_suppressed = true;
    } else {
      Usage();
      return 2;
    }
  }
  if (opts.root.empty()) {
    Usage();
    return 2;
  }

  aurora::lint::Report report = aurora::lint::AnalyzeRepo(opts);
  std::cout << report.ToText();
  if (list_suppressed) {
    for (const auto& f : report.findings) {
      if (!f.suppressed) continue;
      std::cout << f.file << ":" << f.line << ": [" << f.rule
                << "] suppressed: "
                << (f.justification.empty() ? "(no justification)"
                                            : f.justification)
                << "\n";
    }
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << report.ToJson();
    if (!out) {
      std::fprintf(stderr, "aurora_lint: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
  }
  return report.unsuppressed() == 0 ? 0 : 1;
}
