#include "lint_core.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace aurora::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

size_t SkipWs(const std::string& s, size_t i) {
  while (i < s.size() && IsSpace(s[i])) ++i;
  return i;
}

/// Whole-word occurrence of `word` in `s` starting at or after `from`;
/// returns npos if none.
size_t FindWord(const std::string& s, const std::string& word, size_t from) {
  size_t i = from;
  while ((i = s.find(word, i)) != std::string::npos) {
    bool left_ok = i == 0 || !IsIdentChar(s[i - 1]);
    size_t end = i + word.size();
    bool right_ok = end >= s.size() || !IsIdentChar(s[end]);
    if (left_ok && right_ok) return i;
    i = end;
  }
  return std::string::npos;
}

bool ContainsWord(const std::string& s, const std::string& word) {
  return FindWord(s, word, 0) != std::string::npos;
}

/// Reads the identifier ending at `end` (exclusive); empty if none.
std::string WordEndingAt(const std::string& s, size_t end) {
  size_t b = end;
  while (b > 0 && IsIdentChar(s[b - 1])) --b;
  return s.substr(b, end - b);
}

/// Reads the identifier starting at `i`; empty if none.
std::string WordStartingAt(const std::string& s, size_t i) {
  size_t e = i;
  while (e < s.size() && IsIdentChar(s[e])) ++e;
  return s.substr(i, e - i);
}

size_t PrevNonWs(const std::string& s, size_t i) {
  // Returns index of previous non-whitespace char before i, or npos.
  while (i > 0) {
    --i;
    if (!IsSpace(s[i])) return i;
  }
  return std::string::npos;
}

struct Suppression {
  std::set<std::string> rules;
  std::string justification;
};

struct FileData {
  std::string rel;
  std::string code;                       // stripped text
  std::vector<size_t> line_offsets;       // offset of line i (0-based entry)
  std::map<int, Suppression> same_line;   // NOLINT(...)
  std::map<int, Suppression> next_line;   // NOLINTNEXTLINE(...)

  int LineOf(size_t offset) const {
    auto it = std::upper_bound(line_offsets.begin(), line_offsets.end(),
                               offset);
    return static_cast<int>(it - line_offsets.begin());
  }
};

/// Collected crash-lifecycle facts for aurora-C1.
struct ClassInfo {
  bool has_crash = false;
  // (member name, file, line) of each direct EventId member.
  std::vector<std::tuple<std::string, std::string, int>> eventid_members;
};

struct CrashBody {
  std::string text;
  std::string file;
  int line = 0;
};

struct Analysis {
  Options opts;
  std::vector<FileData> files;
  std::map<std::string, ClassInfo> classes;
  std::map<std::string, CrashBody> crash_bodies;
  std::vector<Finding> findings;
};

const char* HintFor(const std::string& rule) {
  if (rule == "aurora-D1") {
    return "draw time from sim::EventLoop::now() and randomness from a "
           "seeded common/random.h stream";
  }
  if (rule == "aurora-D2") {
    return "use std::map/std::set (ordered) so iteration order is "
           "deterministic across runs and ASLR";
  }
  if (rule == "aurora-D3") {
    return "key the map by a stable id (NodeId, PgId, sequence number) "
           "instead of a pointer";
  }
  if (rule == "aurora-L1") {
    return "capture weak_from_this() (or a std::weak_ptr copy) and lock() "
           "inside the callback";
  }
  if (rule == "aurora-L2") {
    return "capture a std::weak_ptr alias of the closure holder and "
           "lock() inside (see Database::ZeroDowntimePatch)";
  }
  if (rule == "aurora-C1") {
    return "add loop_->Cancel(<member>) to Crash() so crash/restart "
           "cycles do not leak pending events";
  }
  if (rule == "aurora-C2") {
    return "store the EventId in a member cancelled by Crash(), or "
           "suppress with a justification if the event is one-shot and "
           "generation-guarded";
  }
  if (rule == "aurora-H1") {
    return "use aurora::InlineFunction (common/inline_function.h): "
           "move-only, small-buffer-optimized, no per-event malloc";
  }
  if (rule == "aurora-S1") {
    return "write '// NOLINT(aurora-XX): <why this is safe>'";
  }
  return "";
}

// ---------------------------------------------------------------------------
// NOLINT comment parsing
// ---------------------------------------------------------------------------

void ParseNolints(const std::map<int, std::string>& line_comments,
                  FileData* fd) {
  for (const auto& [line, text] : line_comments) {
    for (const char* marker : {"NOLINTNEXTLINE(", "NOLINT("}) {
      size_t pos = text.find(marker);
      if (pos == std::string::npos) continue;
      // "NOLINTNEXTLINE(" contains "NOLINT(" at offset 8 — make sure we
      // match the right marker.
      if (std::string(marker) == "NOLINT(" &&
          text.find("NOLINTNEXTLINE(") != std::string::npos) {
        continue;
      }
      size_t open = pos + std::string(marker).size();
      size_t close = text.find(')', open);
      if (close == std::string::npos) continue;
      Suppression sup;
      std::string inside = text.substr(open, close - open);
      std::stringstream ss(inside);
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        size_t b = rule.find_first_not_of(" \t");
        size_t e = rule.find_last_not_of(" \t");
        if (b == std::string::npos) continue;
        sup.rules.insert(rule.substr(b, e - b + 1));
      }
      size_t just = close + 1;
      just = SkipWs(text, just);
      if (just < text.size() && text[just] == ':') {
        std::string j = text.substr(just + 1);
        size_t b = j.find_first_not_of(" \t");
        size_t e = j.find_last_not_of(" \t\r\n");
        if (b != std::string::npos) sup.justification = j.substr(b, e - b + 1);
      }
      bool any_aurora = false;
      for (const auto& r : sup.rules) {
        if (r.rfind("aurora-", 0) == 0) any_aurora = true;
      }
      if (!any_aurora) continue;  // clang-tidy NOLINTs are not ours
      if (std::string(marker) == "NOLINTNEXTLINE(") {
        fd->next_line[line] = std::move(sup);
      } else {
        fd->same_line[line] = std::move(sup);
      }
      break;
    }
  }
}

/// Checks suppression for (line, rule); returns pointer to the matching
/// Suppression or nullptr.
const Suppression* FindSuppression(const FileData& fd, int line,
                                   const std::string& rule) {
  auto it = fd.same_line.find(line);
  if (it != fd.same_line.end() && it->second.rules.count(rule)) {
    return &it->second;
  }
  it = fd.next_line.find(line - 1);
  if (it != fd.next_line.end() && it->second.rules.count(rule)) {
    return &it->second;
  }
  return nullptr;
}

void Emit(Analysis* a, const FileData& fd, int line, const std::string& rule,
          std::string message) {
  Finding f;
  f.file = fd.rel;
  f.line = line;
  f.rule = rule;
  f.message = std::move(message);
  f.hint = HintFor(rule);
  for (const auto& [substr, r] : a->opts.allowlist) {
    if ((r == rule || r == "*") && fd.rel.find(substr) != std::string::npos) {
      f.suppressed = true;
      f.justification = "allowlisted in lint options";
      a->findings.push_back(std::move(f));
      return;
    }
  }
  if (const Suppression* sup = FindSuppression(fd, line, rule)) {
    f.suppressed = true;
    f.justification = sup->justification;
    if (sup->justification.empty()) {
      Finding s1;
      s1.file = fd.rel;
      s1.line = line;
      s1.rule = "aurora-S1";
      s1.message = "suppression of " + rule + " lacks a justification";
      s1.hint = HintFor("aurora-S1");
      a->findings.push_back(std::move(s1));
    }
  }
  a->findings.push_back(std::move(f));
}

// ---------------------------------------------------------------------------
// Rule scoping
// ---------------------------------------------------------------------------

bool InDeterministicCore(const std::string& rel) {
  return rel.rfind("src/sim/", 0) == 0 || rel.rfind("src/engine/", 0) == 0 ||
         rel.rfind("src/storage/", 0) == 0;
}

bool InSim(const std::string& rel) { return rel.rfind("src/sim/", 0) == 0; }

// ---------------------------------------------------------------------------
// D rules: determinism hazards
// ---------------------------------------------------------------------------

void RuleD1(Analysis* a, const FileData& fd) {
  if (!InDeterministicCore(fd.rel)) return;
  const std::string& code = fd.code;
  static const char* kBanned[] = {
      "system_clock",   "steady_clock", "high_resolution_clock",
      "random_device",  "srand",        "getenv",
      "gettimeofday",   "clock_gettime"};
  for (const char* word : kBanned) {
    for (size_t i = FindWord(code, word, 0); i != std::string::npos;
         i = FindWord(code, word, i + 1)) {
      Emit(a, fd, fd.LineOf(i), "aurora-D1",
           std::string("nondeterministic source '") + word +
               "' in the deterministic core");
    }
  }
  // `rand` (std::rand or ::rand). Whole-word match keeps Random/rng safe.
  for (size_t i = FindWord(code, "rand", 0); i != std::string::npos;
       i = FindWord(code, "rand", i + 1)) {
    Emit(a, fd, fd.LineOf(i), "aurora-D1",
         "nondeterministic source 'rand' in the deterministic core");
  }
  // `std::time` or `time(nullptr|NULL|0)`.
  for (size_t i = FindWord(code, "time", 0); i != std::string::npos;
       i = FindWord(code, "time", i + 1)) {
    bool std_qualified =
        i >= 5 && code.compare(i - 5, 5, "std::") == 0 &&
        (i < 6 || !IsIdentChar(code[i - 6]));
    bool wall = false;
    if (std_qualified) {
      wall = true;
    } else {
      size_t p = SkipWs(code, i + 4);
      if (p < code.size() && code[p] == '(') {
        size_t q = SkipWs(code, p + 1);
        std::string arg = WordStartingAt(code, q);
        if (arg == "nullptr" || arg == "NULL" ||
            (arg.empty() && q < code.size() && code[q] == '0')) {
          wall = true;
        }
        if (arg == "0") wall = true;
      }
    }
    if (wall) {
      Emit(a, fd, fd.LineOf(i), "aurora-D1",
           "wall-clock 'time()' in the deterministic core");
    }
  }
}

void RuleD2(Analysis* a, const FileData& fd) {
  if (!InDeterministicCore(fd.rel)) return;
  static const char* kUnordered[] = {"unordered_map", "unordered_set",
                                     "unordered_multimap",
                                     "unordered_multiset"};
  for (const char* word : kUnordered) {
    for (size_t i = FindWord(fd.code, word, 0); i != std::string::npos;
         i = FindWord(fd.code, word, i + 1)) {
      Emit(a, fd, fd.LineOf(i), "aurora-D2",
           std::string("'") + word +
               "' in the deterministic core: iteration order is "
               "implementation-defined");
    }
  }
}

void RuleD3(Analysis* a, const FileData& fd) {
  if (!InDeterministicCore(fd.rel)) return;
  const std::string& code = fd.code;
  static const char* kOrdered[] = {"map", "multimap", "set", "multiset"};
  for (const char* word : kOrdered) {
    for (size_t i = FindWord(code, word, 0); i != std::string::npos;
         i = FindWord(code, word, i + 1)) {
      size_t p = SkipWs(code, i + std::string(word).size());
      if (p >= code.size() || code[p] != '<') continue;
      // Extract the key type: first template argument at angle depth 1.
      int angle = 1;
      int paren = 0;
      size_t q = p + 1;
      size_t key_end = std::string::npos;
      for (; q < code.size() && angle > 0; ++q) {
        char c = code[q];
        if (c == '<') ++angle;
        else if (c == '>') --angle;
        else if (c == '(') ++paren;
        else if (c == ')') --paren;
        else if (c == ',' && angle == 1 && paren == 0) {
          key_end = q;
          break;
        }
      }
      if (key_end == std::string::npos) key_end = q;  // set<T> form
      std::string key = code.substr(p + 1, key_end - p - 1);
      if (key.find('*') != std::string::npos) {
        Emit(a, fd, fd.LineOf(i), "aurora-D3",
             "pointer-keyed ordered container: iteration order depends on "
             "allocation addresses");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// H rule: std::function on the simulator hot path
// ---------------------------------------------------------------------------

void RuleH1(Analysis* a, const FileData& fd) {
  if (!InSim(fd.rel)) return;
  const std::string& code = fd.code;
  size_t i = 0;
  while ((i = code.find("std::function", i)) != std::string::npos) {
    size_t end = i + std::string("std::function").size();
    bool right_ok = end >= code.size() || !IsIdentChar(code[end]);
    bool left_ok = i == 0 || (!IsIdentChar(code[i - 1]) && code[i - 1] != ':');
    if (left_ok && right_ok) {
      Emit(a, fd, fd.LineOf(i), "aurora-H1",
           "std::function in src/sim (type-erased closures on the hot path "
           "heap-allocate and indirect)");
    }
    i = end;
  }
}

// ---------------------------------------------------------------------------
// L rules: shared_ptr closure cycles
// ---------------------------------------------------------------------------

/// True if `[` at `i` opens a lambda capture list (vs array subscript or
/// attribute). Returns the matching `]` in *close.
bool IsLambdaIntro(const std::string& code, size_t i, size_t* close) {
  size_t prev = PrevNonWs(code, i);
  if (prev != std::string::npos) {
    char c = code[prev];
    // After an identifier, `]`, or `)` a `[` is a subscript; `[[` is an
    // attribute.
    if (IsIdentChar(c) || c == ']' || c == ')') return false;
    if (c == '[') return false;
  }
  if (i + 1 < code.size() && code[i + 1] == '[') return false;
  int depth = 1;
  size_t q = i + 1;
  for (; q < code.size() && depth > 0; ++q) {
    if (code[q] == '[') ++depth;
    else if (code[q] == ']') --depth;
    if (q - i > 600) return false;  // capture lists are short
  }
  if (depth != 0) return false;
  *close = q - 1;
  // A lambda continues with (params), {body}, mutable, noexcept, or ->ret.
  size_t after = SkipWs(code, q);
  if (after >= code.size()) return false;
  char c = code[after];
  return c == '(' || c == '{' || c == '-' ||
         std::isalpha(static_cast<unsigned char>(c));
}

/// Splits a capture list into top-level comma-separated items (trimmed).
std::vector<std::string> SplitCaptures(const std::string& list) {
  std::vector<std::string> items;
  int depth = 0;
  std::string cur;
  for (char c : list) {
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    if (c == ',' && depth == 0) {
      items.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  items.push_back(cur);
  for (std::string& it : items) {
    size_t b = it.find_first_not_of(" \t\r\n");
    size_t e = it.find_last_not_of(" \t\r\n");
    it = b == std::string::npos ? "" : it.substr(b, e - b + 1);
  }
  return items;
}

/// Brace depth at every offset (for alias scoping).
std::vector<int> BraceDepths(const std::string& code) {
  std::vector<int> d(code.size() + 1, 0);
  int depth = 0;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '{') ++depth;
    else if (code[i] == '}') --depth;
    d[i + 1] = depth;
  }
  return d;
}

void RuleL(Analysis* a, const FileData& fd) {
  const std::string& code = fd.code;
  std::vector<int> depths = BraceDepths(code);

  // L1a: shared_from_this() directly inside a lambda capture list.
  // L1b: `auto self = shared_from_this()` alias captured strongly later.
  // L2:  `auto fn = make_shared<std::function<...>>()` where the closure
  //      assigned into *fn captures `fn` strongly.
  struct Alias {
    std::string name;
    size_t decl_pos;
    int decl_depth;
    bool is_function_holder;  // L2 (vs L1b)
  };
  std::vector<Alias> aliases;

  for (size_t i = FindWord(code, "shared_from_this", 0);
       i != std::string::npos; i = FindWord(code, "shared_from_this", i + 1)) {
    // Alias declaration? Walk back over `=`, identifier, `auto`.
    size_t eq = PrevNonWs(code, i);
    // Skip over an enclosing `this->` / `Base::` qualification.
    if (eq != std::string::npos && code[eq] == '>' && eq > 0 &&
        code[eq - 1] == '-') {
      eq = PrevNonWs(code, WordEndingAt(code, eq - 1).empty()
                               ? eq - 1
                               : eq - 1 - WordEndingAt(code, eq - 1).size());
    }
    if (eq != std::string::npos && code[eq] == '=') {
      size_t name_end = PrevNonWs(code, eq);
      if (name_end != std::string::npos && IsIdentChar(code[name_end])) {
        std::string name = WordEndingAt(code, name_end + 1);
        size_t kw_end = PrevNonWs(code, name_end + 1 - name.size());
        std::string kw =
            kw_end == std::string::npos ? "" : WordEndingAt(code, kw_end + 1);
        if (kw == "auto" && !name.empty()) {
          aliases.push_back({name, i, depths[i], false});
          continue;  // flagged only if captured strongly later
        }
      }
    }
  }

  for (size_t i = FindWord(code, "make_shared", 0); i != std::string::npos;
       i = FindWord(code, "make_shared", i + 1)) {
    size_t lt = SkipWs(code, i + std::string("make_shared").size());
    if (lt >= code.size() || code[lt] != '<') continue;
    int angle = 1;
    size_t q = lt + 1;
    for (; q < code.size() && angle > 0; ++q) {
      if (code[q] == '<') ++angle;
      else if (code[q] == '>') --angle;
    }
    std::string targ = code.substr(lt + 1, q - lt - 2);
    std::string lower = targ;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower.find("function") == std::string::npos) continue;
    // `auto NAME = std::make_shared<...function...>(...)`.
    size_t eq = PrevNonWs(code, i);
    // Step over std:: qualification.
    if (eq != std::string::npos && code[eq] == ':' && eq > 0 &&
        code[eq - 1] == ':') {
      size_t ns_end = PrevNonWs(code, eq - 1);
      std::string ns = WordEndingAt(code, ns_end + 1);
      eq = PrevNonWs(code, ns_end + 1 - ns.size());
    }
    if (eq == std::string::npos || code[eq] != '=') continue;
    size_t name_end = PrevNonWs(code, eq);
    if (name_end == std::string::npos || !IsIdentChar(code[name_end])) {
      continue;
    }
    std::string name = WordEndingAt(code, name_end + 1);
    if (!name.empty()) aliases.push_back({name, i, depths[i], true});
  }

  // Scan lambda capture lists.
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i] != '[') continue;
    size_t close;
    if (!IsLambdaIntro(code, i, &close)) continue;
    std::string list = code.substr(i + 1, close - i - 1);
    if (ContainsWord(list, "shared_from_this")) {
      Emit(a, fd, fd.LineOf(i), "aurora-L1",
           "lambda captures shared_from_this() strongly: if the closure is "
           "stored on (or scheduled for) the object it owns, it pins the "
           "object forever");
    }
    std::vector<std::string> items = SplitCaptures(list);
    for (const Alias& al : aliases) {
      if (i < al.decl_pos || depths[i] < al.decl_depth) continue;
      bool strong = false;
      for (const std::string& item : items) {
        if (item == al.name) strong = true;  // bare by-copy capture
      }
      if (!strong) continue;
      if (al.is_function_holder) {
        // L2 fires only when this lambda is assigned into *alias —
        // `*name = [..., name, ...]` is the self-cycle.
        size_t prev = PrevNonWs(code, i);
        if (prev == std::string::npos || code[prev] != '=') continue;
        size_t star_name_end = PrevNonWs(code, prev);
        if (star_name_end == std::string::npos) continue;
        std::string lhs = WordEndingAt(code, star_name_end + 1);
        size_t star = PrevNonWs(code, star_name_end + 1 - lhs.size());
        if (lhs != al.name || star == std::string::npos ||
            code[star] != '*') {
          continue;
        }
        Emit(a, fd, fd.LineOf(i), "aurora-L2",
             "closure assigned into *" + al.name + " captures '" + al.name +
                 "' strongly: self-referential shared_ptr<function> cycle "
                 "never frees");
      } else {
        Emit(a, fd, fd.LineOf(i), "aurora-L1",
             "lambda captures '" + al.name +
                 "' (a strong shared_from_this() alias); stored callbacks "
                 "must hold the object weakly");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// C rules: crash lifecycle
// ---------------------------------------------------------------------------

bool DefinesCrashMethod(const std::string& code) {
  for (size_t i = FindWord(code, "Crash", 0); i != std::string::npos;
       i = FindWord(code, "Crash", i + 1)) {
    size_t p = SkipWs(code, i + 5);
    if (p >= code.size() || code[p] != '(') continue;
    if (i >= 2 && code[i - 1] == ':' && code[i - 2] == ':') return true;
    std::string kw = WordEndingAt(code, i == 0 ? 0 : PrevNonWs(code, i) + 1);
    if (kw == "void") return true;
  }
  return false;
}

void RuleC2(Analysis* a, const FileData& fd) {
  const std::string& code = fd.code;
  if (!DefinesCrashMethod(code)) return;
  for (const char* method : {"Schedule", "ScheduleAt"}) {
    for (size_t i = FindWord(code, method, 0); i != std::string::npos;
         i = FindWord(code, method, i + 1)) {
      size_t p = SkipWs(code, i + std::string(method).size());
      if (p >= code.size() || code[p] != '(') continue;
      // Must be a member call on an event loop: `<obj>->Schedule(` or
      // `<obj>.Schedule(` where <obj> mentions "loop".
      size_t arrow = PrevNonWs(code, i);
      if (arrow == std::string::npos) continue;
      bool member_call =
          code[arrow] == '.' ||
          (code[arrow] == '>' && arrow > 0 && code[arrow - 1] == '-');
      if (!member_call) continue;
      // Statement text from the previous boundary to the call.
      size_t b = i;
      while (b > 0 && code[b - 1] != ';' && code[b - 1] != '{' &&
             code[b - 1] != '}') {
        --b;
      }
      std::string stmt = code.substr(b, i - b);
      if (stmt.find("loop") == std::string::npos) continue;
      if (stmt.find('=') != std::string::npos) continue;   // result stored
      if (ContainsWord(stmt, "return")) continue;          // result returned
      Emit(a, fd, fd.LineOf(i), "aurora-C2",
           "scheduled event id is discarded in a crash-managed component; "
           "Crash() cannot cancel it");
    }
  }
}

/// One pass over a file collecting class facts for aurora-C1.
void CollectClasses(Analysis* a, const FileData& fd) {
  const std::string& code = fd.code;
  struct OpenClass {
    std::string name;
    int body_depth;
  };
  std::vector<OpenClass> stack;
  int depth = 0;
  std::string pending_class;
  bool pending = false;

  auto capture_body = [&code](size_t open_brace) -> std::pair<std::string,
                                                              size_t> {
    int d = 1;
    size_t q = open_brace + 1;
    for (; q < code.size() && d > 0; ++q) {
      if (code[q] == '{') ++d;
      else if (code[q] == '}') --d;
    }
    return {code.substr(open_brace, q - open_brace), q};
  };

  for (size_t i = 0; i < code.size(); ++i) {
    char c = code[i];
    if (c == '{') {
      ++depth;
      if (pending) {
        stack.push_back({pending_class, depth});
        pending = false;
      }
      continue;
    }
    if (c == '}') {
      if (!stack.empty() && stack.back().body_depth == depth) {
        stack.pop_back();
      }
      --depth;
      continue;
    }
    if (c == ';' && pending) {
      pending = false;  // forward declaration
      continue;
    }
    if (!IsIdentChar(c) || (i > 0 && IsIdentChar(code[i - 1]))) continue;
    std::string w = WordStartingAt(code, i);

    if (w == "class" || w == "struct") {
      size_t prev = PrevNonWs(code, i);
      // Skip template parameters (`template <class T>`) and elaborated
      // uses in parameter lists (`, struct Foo*`).
      if (prev != std::string::npos &&
          (code[prev] == '<' || code[prev] == ',' || code[prev] == '(')) {
        i += w.size() - 1;
        continue;
      }
      std::string kw = prev == std::string::npos
                           ? ""
                           : WordEndingAt(code, prev + 1);
      if (kw == "enum") {
        i += w.size() - 1;
        continue;
      }
      size_t p = SkipWs(code, i + w.size());
      std::string name = WordStartingAt(code, p);
      if (!name.empty()) {
        pending_class = name;
        pending = true;
      }
      i += w.size() - 1;
      continue;
    }

    if (w == "EventId" && !stack.empty() &&
        depth == stack.back().body_depth) {
      size_t p = SkipWs(code, i + w.size());
      std::string member = WordStartingAt(code, p);
      if (!member.empty()) {
        size_t after = SkipWs(code, p + member.size());
        if (after < code.size() &&
            (code[after] == ';' || code[after] == '=')) {
          a->classes[stack.back().name].eventid_members.emplace_back(
              member, fd.rel, fd.LineOf(p));
        }
      }
      i += w.size() - 1;
      continue;
    }

    if (w == "Crash") {
      size_t p = SkipWs(code, i + w.size());
      if (p >= code.size() || code[p] != '(') {
        i += w.size() - 1;
        continue;
      }
      size_t close_paren = code.find(')', p);
      if (close_paren == std::string::npos) {
        i += w.size() - 1;
        continue;
      }
      bool qualified = i >= 2 && code[i - 1] == ':' && code[i - 2] == ':';
      if (qualified) {
        std::string cls = WordEndingAt(code, i - 2);
        // Skip trailing specifiers to the body.
        size_t q = close_paren + 1;
        while (q < code.size() && code[q] != '{' && code[q] != ';') ++q;
        if (q < code.size() && code[q] == '{' && !cls.empty()) {
          auto [body, end] = capture_body(q);
          CrashBody cb;
          cb.text = std::move(body);
          cb.file = fd.rel;
          cb.line = fd.LineOf(i);
          a->crash_bodies[cls] = std::move(cb);
          a->classes[cls].has_crash = true;
          i = end;
        }
        continue;
      }
      if (!stack.empty() && depth == stack.back().body_depth) {
        // In-class declaration or inline definition.
        std::string kw;
        size_t prev = PrevNonWs(code, i);
        if (prev != std::string::npos) kw = WordEndingAt(code, prev + 1);
        if (kw != "void") {
          i += w.size() - 1;
          continue;
        }
        a->classes[stack.back().name].has_crash = true;
        size_t q = close_paren + 1;
        while (q < code.size() && code[q] != '{' && code[q] != ';') ++q;
        if (q < code.size() && code[q] == '{') {
          auto [body, end] = capture_body(q);
          CrashBody cb;
          cb.text = std::move(body);
          cb.file = fd.rel;
          cb.line = fd.LineOf(i);
          a->crash_bodies[stack.back().name] = std::move(cb);
          i = end;
        }
      }
      continue;
    }
    i += w.size() - 1;
  }
}

void EvaluateC1(Analysis* a) {
  std::map<std::string, const FileData*> by_rel;
  for (const FileData& fd : a->files) by_rel[fd.rel] = &fd;
  for (const auto& [name, info] : a->classes) {
    if (!info.has_crash || info.eventid_members.empty()) continue;
    auto bit = a->crash_bodies.find(name);
    if (bit == a->crash_bodies.end()) continue;  // body not in scanned set
    const CrashBody& body = bit->second;
    const FileData* body_fd = by_rel.at(body.file);
    for (const auto& [member, mfile, mline] : info.eventid_members) {
      if (ContainsWord(body.text, member)) continue;
      // A NOLINT on the member declaration line also suppresses.
      const FileData* member_fd = by_rel.at(mfile);
      if (const Suppression* sup =
              FindSuppression(*member_fd, mline, "aurora-C1")) {
        Finding f;
        f.file = mfile;
        f.line = mline;
        f.rule = "aurora-C1";
        f.message = "EventId member '" + member + "' of " + name +
                    " is not cancelled in Crash()";
        f.hint = HintFor("aurora-C1");
        f.suppressed = true;
        f.justification = sup->justification;
        a->findings.push_back(std::move(f));
        continue;
      }
      Emit(a, *body_fd, body.line, "aurora-C1",
           "EventId member '" + member + "' of " + name +
               " is not cancelled in Crash()");
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

bool IsSourceFile(const std::filesystem::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
         ext == ".cpp" || ext == ".cxx";
}

}  // namespace

namespace internal {

std::string StripCode(const std::string& text,
                      std::map<int, std::string>* line_comments) {
  std::string out = text;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  int line = 1;
  std::string raw_delim;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') ++line;
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          // Raw string literal? (R"delim( ... )delim")
          if (i > 0 && text[i - 1] == 'R' &&
              (i < 2 || !IsIdentChar(text[i - 2]))) {
            size_t open = text.find('(', i);
            if (open != std::string::npos) {
              raw_delim = ")" + text.substr(i + 1, open - i - 1) + "\"";
              state = State::kRawString;
            }
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          if (line_comments != nullptr) (*line_comments)[line] += c;
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          if (line_comments != nullptr) (*line_comments)[line] += c;
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < out.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k + 1 < raw_delim.size(); ++k) out[i + k] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

}  // namespace internal

size_t Report::unsuppressed() const {
  size_t n = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++n;
  }
  return n;
}

std::string Report::ToText() const {
  std::ostringstream os;
  size_t suppressed = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
    if (!f.hint.empty()) os << "    fix: " << f.hint << "\n";
  }
  os << "aurora-lint: " << unsuppressed() << " finding(s), " << suppressed
     << " suppressed\n";
  return os.str();
}

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string Report::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"findings\": [";
  bool first = true;
  size_t suppressed = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) ++suppressed;
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": "
       << f.line << ", \"rule\": \"" << JsonEscape(f.rule)
       << "\", \"suppressed\": " << (f.suppressed ? "true" : "false")
       << ", \"message\": \"" << JsonEscape(f.message) << "\", \"hint\": \""
       << JsonEscape(f.hint) << "\", \"justification\": \""
       << JsonEscape(f.justification) << "\"}";
  }
  os << "\n  ],\n  \"summary\": {\"total\": " << findings.size()
     << ", \"unsuppressed\": " << unsuppressed()
     << ", \"suppressed\": " << suppressed << "}\n}\n";
  return os.str();
}

Report AnalyzeRepo(const Options& opts) {
  namespace fs = std::filesystem;
  Analysis a;
  a.opts = opts;

  std::vector<std::string> rels;
  for (const std::string& dir : opts.dirs) {
    fs::path base = fs::path(opts.root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
      rels.push_back(
          fs::relative(entry.path(), opts.root).generic_string());
    }
  }
  std::sort(rels.begin(), rels.end());

  for (const std::string& rel : rels) {
    std::ifstream in(fs::path(opts.root) / rel,
                     std::ios::in | std::ios::binary);
    if (!in) continue;
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();

    FileData fd;
    fd.rel = rel;
    std::map<int, std::string> comments;
    fd.code = internal::StripCode(text, &comments);
    fd.line_offsets.push_back(0);
    for (size_t i = 0; i < fd.code.size(); ++i) {
      if (fd.code[i] == '\n') fd.line_offsets.push_back(i + 1);
    }
    ParseNolints(comments, &fd);
    a.files.push_back(std::move(fd));
  }

  for (const FileData& fd : a.files) {
    RuleD1(&a, fd);
    RuleD2(&a, fd);
    RuleD3(&a, fd);
    RuleH1(&a, fd);
    RuleL(&a, fd);
    RuleC2(&a, fd);
    CollectClasses(&a, fd);
  }
  EvaluateC1(&a);

  std::sort(a.findings.begin(), a.findings.end(),
            [](const Finding& x, const Finding& y) {
              if (x.file != y.file) return x.file < y.file;
              if (x.line != y.line) return x.line < y.line;
              return x.rule < y.rule;
            });
  Report report;
  report.findings = std::move(a.findings);
  return report;
}

}  // namespace aurora::lint
