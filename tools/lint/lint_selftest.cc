// Self-test for aurora-lint: runs the analyzer over the fixture tree in
// tools/lint/testdata (which mirrors the real src/ layout so path-scoped
// rules apply naturally) and checks every rule's positive and negative
// cases plus the NOLINT suppression round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint_core.h"

namespace aurora::lint {
namespace {

const Report& FixtureReport() {
  static const Report* report = [] {
    Options opts;
    opts.root = AURORA_LINT_TESTDATA_DIR;
    return new Report(AnalyzeRepo(opts));
  }();
  return *report;
}

std::vector<Finding> FindingsFor(const std::string& file) {
  std::vector<Finding> out;
  for (const Finding& f : FixtureReport().findings) {
    if (f.file == file) out.push_back(f);
  }
  return out;
}

size_t CountRule(const std::vector<Finding>& fs, const std::string& rule,
                 bool suppressed = false) {
  return std::count_if(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.rule == rule && f.suppressed == suppressed;
  });
}

TEST(LintSelftest, D1FlagsEveryWallClockAndEnvSource) {
  auto fs = FindingsFor("src/sim/positive_d1.cc");
  EXPECT_EQ(CountRule(fs, "aurora-D1"), 5u)
      << "system_clock, random_device, time(nullptr), std::rand, getenv";
  for (const Finding& f : fs) {
    EXPECT_EQ(f.rule, "aurora-D1") << f.file << ":" << f.line;
    EXPECT_FALSE(f.hint.empty());
    EXPECT_GT(f.line, 0);
  }
}

TEST(LintSelftest, D2D3FlagUnorderedAndPointerKeyedContainers) {
  auto fs = FindingsFor("src/sim/positive_d2_d3.cc");
  EXPECT_EQ(CountRule(fs, "aurora-D2"), 2u);
  EXPECT_EQ(CountRule(fs, "aurora-D3"), 2u);
}

TEST(LintSelftest, DeterministicCodeIsClean) {
  EXPECT_TRUE(FindingsFor("src/sim/negative_d.cc").empty())
      << "comments/strings mentioning banned names must not fire";
}

TEST(LintSelftest, L1FlagsStrongSharedFromThisCaptures) {
  auto fs = FindingsFor("src/engine/positive_l1.cc");
  EXPECT_EQ(CountRule(fs, "aurora-L1"), 2u) << "direct capture + alias";
}

TEST(LintSelftest, WeakSelfIdiomIsClean) {
  EXPECT_TRUE(FindingsFor("src/engine/negative_l1.cc").empty());
}

TEST(LintSelftest, L2FlagsSelfReferentialFunctionHolder) {
  auto fs = FindingsFor("src/engine/positive_l2.cc");
  EXPECT_EQ(CountRule(fs, "aurora-L2"), 1u);
}

TEST(LintSelftest, WeakStepIdiomIsClean) {
  EXPECT_TRUE(FindingsFor("src/engine/negative_l2.cc").empty())
      << "init-capture 'step = weak_step.lock()' is not a strong capture";
}

TEST(LintSelftest, C1FlagsUncancelledEventIdMember) {
  auto fs = FindingsFor("src/engine/positive_c1.cc");
  ASSERT_EQ(CountRule(fs, "aurora-C1"), 1u);
  for (const Finding& f : fs) {
    if (f.rule == "aurora-C1") {
      EXPECT_NE(f.message.find("gossip_timer_"), std::string::npos);
    }
  }
}

TEST(LintSelftest, CancelledTimersAndAliasesAreClean) {
  EXPECT_TRUE(FindingsFor("src/engine/negative_c1.cc").empty())
      << "`using EventId` aliases and EventId return types are not members";
}

TEST(LintSelftest, C2FlagsDiscardedScheduleInCrashManagedFile) {
  auto fs = FindingsFor("src/engine/positive_c2.cc");
  EXPECT_EQ(CountRule(fs, "aurora-C2"), 1u);
}

TEST(LintSelftest, StoredAndReturnedScheduleResultsAreClean) {
  EXPECT_TRUE(FindingsFor("src/engine/negative_c2.cc").empty());
}

TEST(LintSelftest, H1FlagsStdFunctionInSim) {
  auto fs = FindingsFor("src/sim/positive_h1.h");
  EXPECT_EQ(CountRule(fs, "aurora-H1"), 1u);
}

TEST(LintSelftest, InlineFunctionInSimIsClean) {
  EXPECT_TRUE(FindingsFor("src/sim/negative_h1.h").empty());
}

TEST(LintSelftest, StdFunctionOutsideSimIsNotH1) {
  for (const Finding& f : FixtureReport().findings) {
    if (f.rule != "aurora-H1") continue;
    EXPECT_EQ(f.file.rfind("src/sim/", 0), 0u) << f.file;
  }
}

TEST(LintSelftest, SuppressionRoundTripBothForms) {
  auto fs = FindingsFor("src/sim/suppressed_ok.cc");
  // Both the same-line NOLINT and the NOLINTNEXTLINE forms suppress, and
  // each carries its justification through to the report.
  EXPECT_EQ(CountRule(fs, "aurora-H1", /*suppressed=*/true), 2u);
  EXPECT_EQ(CountRule(fs, "aurora-H1", /*suppressed=*/false), 0u);
  EXPECT_EQ(CountRule(fs, "aurora-S1"), 0u);
  for (const Finding& f : fs) {
    EXPECT_TRUE(f.suppressed);
    EXPECT_FALSE(f.justification.empty()) << f.file << ":" << f.line;
  }
}

TEST(LintSelftest, SuppressionWithoutJustificationEarnsS1) {
  auto fs = FindingsFor("src/sim/suppressed_missing.cc");
  EXPECT_EQ(CountRule(fs, "aurora-H1", /*suppressed=*/true), 1u);
  EXPECT_EQ(CountRule(fs, "aurora-S1", /*suppressed=*/false), 1u);
}

TEST(LintSelftest, BareClangTidyNolintDoesNotSuppressAuroraRules) {
  auto fs = FindingsFor("src/sim/bare_nolint.cc");
  EXPECT_EQ(CountRule(fs, "aurora-H1", /*suppressed=*/false), 1u);
}

TEST(LintSelftest, StripCodeBlanksCommentsAndStrings) {
  std::map<int, std::string> comments;
  std::string in =
      "int a; // system_clock\n"
      "const char* s = \"rand()\";\n"
      "/* getenv\n   spans lines */ int b;\n"
      "auto r = R\"x(time(nullptr))x\";\n";
  std::string out = internal::StripCode(in, &comments);
  EXPECT_EQ(out.size(), in.size());
  EXPECT_EQ(out.find("system_clock"), std::string::npos);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("getenv"), std::string::npos);
  EXPECT_EQ(out.find("time(nullptr)"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
  // Newlines are preserved so line numbers stay valid.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(in.begin(), in.end(), '\n'));
  // Comment text is captured per line (for NOLINT parsing).
  EXPECT_NE(comments[1].find("system_clock"), std::string::npos);
  EXPECT_NE(comments[3].find("getenv"), std::string::npos);
}

TEST(LintSelftest, JsonReportIsWellFormedAndCountsMatch) {
  const Report& r = FixtureReport();
  std::string json = r.ToJson();
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  EXPECT_NE(
      json.find("\"unsuppressed\": " + std::to_string(r.unsuppressed())),
      std::string::npos);
  EXPECT_NE(json.find("\"total\": " + std::to_string(r.findings.size())),
            std::string::npos);
}

TEST(LintSelftest, FindingsAreSortedByFileLineRule) {
  const Report& r = FixtureReport();
  ASSERT_FALSE(r.findings.empty());
  for (size_t i = 1; i < r.findings.size(); ++i) {
    const Finding& a = r.findings[i - 1];
    const Finding& b = r.findings[i];
    EXPECT_TRUE(std::tie(a.file, a.line, a.rule) <=
                std::tie(b.file, b.line, b.rule));
  }
}

}  // namespace
}  // namespace aurora::lint
