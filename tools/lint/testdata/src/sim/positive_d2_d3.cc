// Fixture: unordered containers (D2) and pointer-keyed maps (D3).
// (No #includes of the unordered headers: the include line itself would
// also fire D2, which is intended behaviour but noise for this fixture.)
#include <map>

namespace fixture {

struct Node {
  int id = 0;
};

struct Registry {
  std::unordered_map<int, Node> by_id;       // D2
  std::unordered_set<int> live;              // D2
  std::map<Node*, int> rank;                 // D3: keyed by address
  std::map<const Node*, long> weights;       // D3: keyed by address
};

}  // namespace fixture
