// Fixture: a bare clang-tidy-style NOLINT does NOT suppress aurora rules.
#include <functional>

namespace fixture {

struct Hooks4 {
  std::function<void()> on_event;  // NOLINT
};

}  // namespace fixture
