// Fixture: suppression round-trip — both NOLINT forms, each with the
// required justification. Findings are recorded as suppressed; the file
// contributes zero unsuppressed findings.
#include <functional>

namespace fixture {

struct DebugHooks {
  std::function<void()> on_event;  // NOLINT(aurora-H1): debug-only hook, fired at most once per run
};

struct DebugHooks2 {
  // NOLINTNEXTLINE(aurora-H1): test seam injected by the harness, not on the hot path
  std::function<void()> on_other;
};

}  // namespace fixture
