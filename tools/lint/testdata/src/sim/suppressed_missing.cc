// Fixture: a NOLINT without a justification earns an aurora-S1 finding.
#include <functional>

namespace fixture {

struct DebugHooks3 {
  std::function<void()> on_event;  // NOLINT(aurora-H1)
};

}  // namespace fixture
