// Fixture: InlineFunction on the hot path — no H1 finding.
#ifndef FIXTURE_NEGATIVE_H1_H_
#define FIXTURE_NEGATIVE_H1_H_

namespace aurora {
template <typename Sig, int N>
class InlineFunction {};
}  // namespace aurora

namespace fixture {

struct Hooks {
  aurora::InlineFunction<void(), 64> on_event;
};

}  // namespace fixture

#endif  // FIXTURE_NEGATIVE_H1_H_
