// Fixture: deterministic code that must NOT trip any D rule — mentions of
// banned names in comments and string literals are fine, as are ordered
// containers keyed by stable ids and the repo's seeded Random.
#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace fixture {

// system_clock and random_device in a comment are not findings.
const char* kDoc =
    "do not use system_clock, random_device, or time(nullptr) here";

struct Event {
  uint64_t at = 0;
};

struct Loop {
  uint64_t now = 0;  // sim time, not wall time
  std::map<uint64_t, Event> queue;       // keyed by sequence number
  std::set<std::string> labels;          // keyed by value
  uint64_t runtime = 0;                  // 'time' substring is not a call
};

uint64_t Brand(uint64_t x) { return x * 2862933555777941757ULL; }

}  // namespace fixture
