// Fixture: every banned nondeterminism source fires aurora-D1.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

uint64_t WallSeed() {
  auto now = std::chrono::system_clock::now();  // D1: wall clock
  (void)now;
  std::random_device rd;                        // D1: hardware entropy
  uint64_t seed = rd();
  seed ^= static_cast<uint64_t>(time(nullptr));  // D1: wall clock
  seed ^= static_cast<uint64_t>(std::rand());    // D1: global PRNG
  if (getenv("FIXTURE_SEED") != nullptr) {       // D1: environment
    seed = 42;
  }
  return seed;
}

}  // namespace fixture
