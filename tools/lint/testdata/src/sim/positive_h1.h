// Fixture: std::function on the simulator hot path.
#ifndef FIXTURE_POSITIVE_H1_H_
#define FIXTURE_POSITIVE_H1_H_

#include <functional>

namespace fixture {

struct Hooks {
  std::function<void()> on_event;  // H1
};

}  // namespace fixture

#endif  // FIXTURE_POSITIVE_H1_H_
