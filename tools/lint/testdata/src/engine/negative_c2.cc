// Fixture: every Schedule() result is stored or returned — no C2 finding.
#include <cstdint>

namespace sim {
using EventId = uint64_t;
struct Loop {
  EventId Schedule(int) { return 0; }
  void Cancel(EventId) {}
};
}  // namespace sim

namespace fixture {

class Component {
 public:
  void Crash() { loop_->Cancel(timer_); }
  void Arm() { timer_ = loop_->Schedule(5); }
  sim::EventId Defer() { return loop_->Schedule(9); }

 private:
  sim::Loop* loop_ = nullptr;
  sim::EventId timer_ = 0;
};

}  // namespace fixture
