// Fixture: the weak-self idiom — no L findings.
#include <functional>
#include <memory>

namespace fixture {

class Session : public std::enable_shared_from_this<Session> {
 public:
  void Start() {
    std::weak_ptr<Session> weak = weak_from_this();
    callback_ = [weak]() {
      if (auto locked = weak.lock()) locked->Tick();
    };
  }
  void Tick() {}

 private:
  std::function<void()> callback_;
};

}  // namespace fixture
