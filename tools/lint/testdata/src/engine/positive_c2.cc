// Fixture: discarded Schedule() result in a crash-managed component.
#include <cstdint>

namespace sim {
using EventId = uint64_t;
struct Loop {
  EventId Schedule(int) { return 0; }
  void Cancel(EventId) {}
};
}  // namespace sim

namespace fixture {

class Component {
 public:
  void Crash() { alive_ = false; }
  void Arm() {
    // C2: the returned EventId is dropped; Crash() cannot cancel this.
    loop_->Schedule(5);
  }

 private:
  sim::Loop* loop_ = nullptr;
  bool alive_ = true;
};

}  // namespace fixture
