// Fixture: self-referential shared_ptr<std::function> cycle.
#include <functional>
#include <memory>

namespace fixture {

class Pump {
 public:
  void Run() {
    auto step = std::make_shared<std::function<void()>>();
    // L2: *step captures step strongly — the closure owns itself.
    *step = [this, step]() { Next(); };
    (*step)();
  }
  void Next() {}
};

}  // namespace fixture
