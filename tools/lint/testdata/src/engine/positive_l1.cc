// Fixture: strong shared_from_this captures (direct and via alias).
#include <functional>
#include <memory>

namespace fixture {

class Session : public std::enable_shared_from_this<Session> {
 public:
  void StartDirect() {
    // L1: the stored closure pins the session forever.
    callback_ = [self = shared_from_this()]() { self->Tick(); };
  }
  void StartViaAlias() {
    auto self = shared_from_this();
    // L1: 'self' is a strong alias captured by copy.
    callback_ = [this, self]() { Tick(); };
  }
  void Tick() {}

 private:
  std::function<void()> callback_;
};

}  // namespace fixture
