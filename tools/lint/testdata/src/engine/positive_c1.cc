// Fixture: EventId member not cancelled by Crash().
#include <cstdint>

namespace sim {
using EventId = uint64_t;
struct Loop {
  void Cancel(EventId) {}
};
}  // namespace sim

namespace fixture {

class Flaky {
 public:
  // C1: gossip_timer_ is never cancelled here.
  void Crash() { alive_ = false; }

 private:
  sim::EventId gossip_timer_ = 0;
  bool alive_ = true;
};

}  // namespace fixture
