// Fixture: Crash() cancels every EventId member — no C1 finding. Also
// checks that `using EventId = ...` and EventId-returning methods are not
// mistaken for members.
#include <cstdint>

namespace sim {
using EventId = uint64_t;
struct Loop {
  EventId Schedule() { return 0; }
  void Cancel(EventId) {}
};
}  // namespace sim

namespace fixture {

class Stable {
 public:
  using EventId = sim::EventId;  // alias, not a member
  EventId Arm() {               // return type, not a member
    gc_timer_ = loop_->Schedule();
    return gc_timer_;
  }
  void Crash() {
    loop_->Cancel(gc_timer_);
    alive_ = false;
  }

 private:
  sim::Loop* loop_ = nullptr;
  sim::EventId gc_timer_ = 0;
  bool alive_ = true;
};

}  // namespace fixture
