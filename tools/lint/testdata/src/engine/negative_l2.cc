// Fixture: the weak-step idiom (in-flight continuations hold the strong
// reference; the stored closure holds only a weak one) — no L findings.
#include <functional>
#include <memory>

namespace fixture {

class Pump {
 public:
  void Run() {
    auto step = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_step = step;
    *step = [this, weak_step]() {
      Dispatch([step = weak_step.lock()]() {
        if (step) (*step)();
      });
    };
    (*step)();
  }
  void Dispatch(std::function<void()> fn) { fn(); }
};

}  // namespace fixture
