#ifndef AURORA_TOOLS_LINT_LINT_CORE_H_
#define AURORA_TOOLS_LINT_LINT_CORE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace aurora::lint {

/// One rule violation (or recorded suppression) at a source location.
struct Finding {
  std::string file;  // path relative to the scan root
  int line = 0;      // 1-based
  std::string rule;  // "aurora-D1", "aurora-C2", ...
  std::string message;
  std::string hint;  // how to fix it
  bool suppressed = false;
  std::string justification;  // from the NOLINT comment, when suppressed
};

/// The rule catalog (see DESIGN.md §10 for the rationale behind each):
///
///  aurora-D1  wall-clock / environment nondeterminism (system_clock,
///             steady_clock, time(nullptr), random_device, rand, srand,
///             getenv, gettimeofday) in src/sim, src/engine, src/storage.
///  aurora-D2  unordered containers in the same directories — iteration
///             order is implementation-defined and breaks byte-identical
///             determinism the moment anyone walks one.
///  aurora-D3  pointer-keyed ordered maps in the same directories —
///             iteration order depends on allocation addresses (ASLR).
///  aurora-L1  lambda capturing shared_from_this() (or a strong alias of
///             it) into a stored callback; must use the weak-self idiom.
///  aurora-L2  self-referential make_shared<std::function<...>> closure:
///             the closure assigned into *self captures `self` strongly,
///             forming a shared_ptr cycle that never frees.
///  aurora-C1  a class with Crash() and EventId timer members whose
///             Crash() body does not cancel every timer member.
///  aurora-C2  discarded loop_->Schedule(...) result in a file that
///             defines a Crash() method: an event that cannot be
///             cancelled on crash leaks into the loop's pending set.
///  aurora-H1  std::function in src/sim — the simulator hot path must use
///             common/inline_function.h (no per-event heap allocation).
///  aurora-S1  a NOLINT(aurora-*) suppression without a justification
///             ("// NOLINT(aurora-X1): why" — the why is mandatory).
struct Options {
  std::string root;  // scan root (repo root or a testdata mirror)
  /// Directories under root to walk, in order.
  std::vector<std::string> dirs = {"src", "tests", "bench"};
  /// (file-substring, rule) pairs exempted without a NOLINT comment.
  /// Rule scoping already handles the common cases; this is for whole-file
  /// waivers that would otherwise need a NOLINT on every line.
  std::vector<std::pair<std::string, std::string>> allowlist;
};

struct Report {
  std::vector<Finding> findings;  // sorted by (file, line, rule)

  size_t unsuppressed() const;
  /// Human-readable listing (one finding per line, hints indented).
  std::string ToText() const;
  /// Machine-readable lint_report.json document.
  std::string ToJson() const;
};

/// Runs every rule over `opts.root`/`opts.dirs` ({.h,.hpp,.cc,.cpp} files)
/// and returns all findings, including suppressed ones.
Report AnalyzeRepo(const Options& opts);

namespace internal {
/// Replaces comments and string/char-literal contents with spaces
/// (preserving newlines and length) so rules never match inside them, and
/// returns the per-line comment text for NOLINT parsing. Exposed for the
/// self-test.
std::string StripCode(const std::string& text,
                      std::map<int, std::string>* line_comments);
}  // namespace internal

}  // namespace aurora::lint

#endif  // AURORA_TOOLS_LINT_LINT_CORE_H_
